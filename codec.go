package qcsim

import (
	"fmt"

	"qcsim/internal/compress"
	"qcsim/internal/compress/registry"
)

// CodecMode selects how a codec interprets CodecOptions.Bound.
type CodecMode uint8

const (
	// CodecLossless requests bit-exact reconstruction; Bound is
	// ignored.
	CodecLossless CodecMode = iota
	// CodecAbsolute bounds the pointwise absolute error by Bound:
	// |d - d'| ≤ Bound for every value.
	CodecAbsolute
	// CodecPointwiseRelative bounds the pointwise relative error by
	// Bound: |d - d'| ≤ Bound·|d| for every value. This is the mode the
	// simulator's lossy levels use.
	CodecPointwiseRelative
)

// String implements fmt.Stringer.
func (m CodecMode) String() string {
	switch m {
	case CodecLossless:
		return "lossless"
	case CodecAbsolute:
		return "abs"
	case CodecPointwiseRelative:
		return "pwr"
	default:
		return fmt.Sprintf("CodecMode(%d)", uint8(m))
	}
}

// CodecOptions carries the per-call compression parameters.
type CodecOptions struct {
	Mode  CodecMode
	Bound float64
}

// Codec compresses and decompresses blocks of float64 values — for the
// simulator, the interleaved real/imaginary parts of one block of
// amplitudes.
//
// Contract (what RegisterCodec factories must provide):
//
//   - Compress appends the encoded form of src to dst (which may be
//     nil) and returns the extended slice. The payload must be
//     self-describing: Decompress receives only the bytes Compress
//     produced.
//   - Decompress writes exactly len(dst) values; implementations should
//     validate any stored count against len(dst) and fail on mismatch
//     rather than writing short.
//   - In CodecAbsolute and CodecPointwiseRelative modes every
//     reconstructed value must respect the requested bound; the engine's
//     fidelity ledger (the paper's Eq. 11) is only a valid lower bound
//     if the codec honors it.
//   - A Codec instance is used by one goroutine at a time, but the
//     engine holds one instance per simulator: factories registered with
//     RegisterCodec must return a fresh instance per call and must not
//     share mutable state between instances.
type Codec interface {
	// Name identifies the codec in reports (e.g. "xor-c").
	Name() string
	// Compress encodes src under opt, appending to dst.
	Compress(dst []byte, src []float64, opt CodecOptions) ([]byte, error)
	// Decompress decodes data into dst.
	Decompress(dst []float64, data []byte) error
}

// modeToInternal converts a public mode; unknown values surface as an
// error from Options.Validate inside the codecs.
func modeToInternal(m CodecMode) compress.ErrorMode {
	switch m {
	case CodecAbsolute:
		return compress.Absolute
	case CodecPointwiseRelative:
		return compress.PointwiseRelative
	default:
		return compress.Lossless
	}
}

func modeFromInternal(m compress.ErrorMode) CodecMode {
	switch m {
	case compress.Absolute:
		return CodecAbsolute
	case compress.PointwiseRelative:
		return CodecPointwiseRelative
	default:
		return CodecLossless
	}
}

// publicCodec adapts an engine codec to the public interface.
type publicCodec struct{ inner compress.Codec }

func (c publicCodec) Name() string { return c.inner.Name() }

func (c publicCodec) Compress(dst []byte, src []float64, opt CodecOptions) ([]byte, error) {
	return c.inner.Compress(dst, src, compress.Options{Mode: modeToInternal(opt.Mode), Bound: opt.Bound})
}

func (c publicCodec) Decompress(dst []float64, data []byte) error {
	return c.inner.Decompress(dst, data)
}

// engineCodec adapts a user-provided public codec to the engine
// interface so registered codecs plug into the compression pipeline.
type engineCodec struct{ outer Codec }

func (c engineCodec) Name() string { return c.outer.Name() }

func (c engineCodec) Compress(dst []byte, src []float64, opt compress.Options) ([]byte, error) {
	return c.outer.Compress(dst, src, CodecOptions{Mode: modeFromInternal(opt.Mode), Bound: opt.Bound})
}

func (c engineCodec) Decompress(dst []float64, data []byte) error {
	return c.outer.Decompress(dst, data)
}

// RegisterCodec adds a named codec factory to the registry, making it
// selectable by WithCodec(name), NewCodec, and every CLI's -codec flag.
// The factory must return a fresh instance on every call (instances are
// never shared between simulators) and honor the Codec contract. Names
// are case-sensitive; registering a name that already exists — built-in,
// alias, or previously registered — is an error.
func RegisterCodec(name string, factory func() Codec) error {
	if factory == nil {
		return fmt.Errorf("%w: nil factory for %q", ErrBadConfig, name)
	}
	if err := registry.Register(name, func() compress.Codec {
		return engineCodec{outer: factory()}
	}); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}

// NewCodec returns a fresh codec by registry name or alias.
func NewCodec(name string) (Codec, error) {
	inner, err := registry.New(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownCodec, name, Codecs())
	}
	return publicCodec{inner: inner}, nil
}

// Codecs lists the selectable codec names (built-in and registered),
// sorted.
func Codecs() []string { return registry.Names() }

// CodecRatio returns the compression ratio raw/compressed for n float64
// values encoded into payloadBytes bytes.
func CodecRatio(n, payloadBytes int) float64 { return compress.Ratio(n, payloadBytes) }
