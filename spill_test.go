package qcsim

import (
	"errors"
	"os"
	"testing"

	"qcsim/circuit"
)

// TestWithSpillCompletesUnderBudget: the facade contract for the spill
// tier — a memory budget that forces the no-spill control into
// ErrBudgetExceeded completes cleanly with WithSpill, states agree,
// and Close empties the spill directory.
func TestWithSpillCompletesUnderBudget(t *testing.T) {
	cir := circuit.RandomCircuit(10, 40, 21)
	// Size the budget off an unbudgeted dry run, as in the core test:
	// above the largest block, below half the lossless footprint.
	dry, err := New(10, WithBlockAmps(64), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dry.Run(nil, cir)
	if err != nil {
		t.Fatal(err)
	}
	budget := res.Footprint / 6
	ctl, err := New(10, WithBlockAmps(64), WithSeed(1),
		WithMemoryBudget(budget), WithErrorLevels(1e-7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Run(nil, cir); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("control: got %v, want ErrBudgetExceeded", err)
	}
	dir := t.TempDir()
	sp, err := New(10, WithBlockAmps(64), WithSeed(1),
		WithMemoryBudget(budget), WithErrorLevels(1e-7),
		WithSpill(dir, 0)) // ramBudget 0 adopts the memory budget
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Run(nil, cir); err != nil {
		t.Fatalf("spill run: %v", err)
	}
	st := sp.Stats()
	if st.SpillWrites == 0 {
		t.Fatal("spill run never wrote to disk")
	}
	if st.FinalLevel != 0 {
		t.Fatalf("spill run escalated to level %d; want lossless completion", st.FinalLevel)
	}
	want, err := dry.FullState()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sp.FullState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("amplitude %d differs: %v vs %v", i, want[i], got[i])
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after Close: %v", ents)
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestWithSpillErrors: misconfiguration is ErrBadConfig; an unusable
// spill directory is ErrSpill (the disk failed, not the option set).
func TestWithSpillErrors(t *testing.T) {
	if _, err := New(6, WithSpill(t.TempDir(), -1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative RAM budget: got %v, want ErrBadConfig", err)
	}
	if _, err := New(6, WithSpill(t.TempDir(), 0)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("no budget at all: got %v, want ErrBadConfig", err)
	}
	_, err := New(6, WithSpill("/nonexistent/qcsim-spill", 1<<20))
	if !errors.Is(err, ErrSpill) {
		t.Fatalf("bad spill dir: got %v, want ErrSpill", err)
	}
	if errors.Is(err, ErrBadConfig) {
		t.Fatal("bad spill dir also matched ErrBadConfig; identities must stay distinct")
	}
}

// TestCloseNoSpill: Close is a safe no-op on in-RAM and MPS backends
// and on an auto simulator whose decision never closed.
func TestCloseNoSpill(t *testing.T) {
	for _, name := range []string{BackendCompressed, BackendMPS, BackendAuto} {
		s, err := New(4, WithBackend(name))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
