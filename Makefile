# Developer conveniences; CI runs the same commands
# (.github/workflows/ci.yml).

.PHONY: test lint fmt

test:
	go build ./...
	go test ./...

fmt:
	gofmt -l -w .

# Run the architectural-invariant analyzers (the lint/ module) over
# the root module: package layering, block-store encapsulation, error
# wrapping, engine determinism, context discipline. See "Static
# analysis" in README.md.
lint:
	go -C lint vet ./...
	go -C lint test ./...
	go -C lint run ./cmd/qclint -C .. ./...
