package qcsim

import (
	"qcsim/circuit"
	"qcsim/internal/core"
	"qcsim/internal/distrib"
)

// distBackend is the compressed engine behind the TCP transport: state
// ownership, inspection, sampling, checkpointing, and Reset all stay
// local (the embedded compressedBackend is authoritative between
// runs), but RunControlled executes over real worker processes — the
// coordinator ships each rank's compressed blocks out, the workers run
// the circuit in lockstep over a tcpnet mesh, and the rank deltas
// merge back in.
//
// Two facade behaviours change on this backend, both documented on
// WithTransport: RunProgress events are not delivered across the
// process boundary (the run still executes; OnGate is dropped), and a
// failed or aborted distributed run keeps the coordinator's pre-run
// state rather than the completed gate prefix.
type distBackend struct {
	compressedBackend
	cfg       core.Config
	noiseProb float64
	opt       distrib.Options
}

func newDistBackend(cb compressedBackend, cfg core.Config, noiseProb float64, workerCmd []string) *distBackend {
	if len(workerCmd) == 0 {
		workerCmd = []string{"qcrank"}
	}
	return &distBackend{
		compressedBackend: cb,
		cfg:               cfg,
		noiseProb:         noiseProb,
		opt:               distrib.Options{WorkerCommand: workerCmd},
	}
}

func (b *distBackend) RunControlled(c *circuit.Circuit, ctl core.RunControl) error {
	return distrib.Run(b.Simulator, b.cfg, b.noiseProb, c, b.opt, ctl.PollAbort)
}

// RankWorker runs the calling process as one rank of a distributed
// job: it connects to the coordinator at coordAddr (spawned workers
// find it in the QCSIM_COORD_ADDR environment variable), executes its
// assigned rank, reports the result, and returns when the job is over.
// A non-nil return means this rank failed;
// errors.Is(err, ErrRankDied) distinguishes a peer dying mid-run from
// local failures. cmd/qcrank is a ready-made main around this call;
// custom worker binaries need it only to register custom codecs before
// serving.
func RankWorker(coordAddr string) error {
	return distrib.Worker(coordAddr)
}

// Transport reports which rank runtime this simulator executes on:
// TransportTCP for a simulator built with WithTransport(TransportTCP),
// TransportInProcess otherwise.
func (s *Simulator) Transport() string {
	if _, ok := s.be.(*distBackend); ok {
		return TransportTCP
	}
	return TransportInProcess
}
