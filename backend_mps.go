package qcsim

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"qcsim/circuit"
	"qcsim/internal/core"
	"qcsim/internal/mps"
	"qcsim/internal/quantum"
)

// mpsBackend adapts internal/mps to the facade's backend contract. The
// MPS stores one 3-index tensor per qubit, capped at bond dimension χ,
// so low-entanglement circuits run in polynomial memory at register
// widths the full-state engine cannot touch; the truncated
// singular-value weight feeds the same fidelity-ledger surface as the
// compressed engine's Eq. 11 bound. What an MPS genuinely cannot do —
// measurement collapse, multi-controlled gates, full-state assertions,
// checkpointing — reports ErrUnsupportedOp.
type mpsBackend struct {
	st   *mps.State
	chi  int
	fuse bool

	gatesRun     int
	maxFootprint int64
	computeTime  time.Duration
	// version invalidates samplers across mutations, mirroring the
	// core engine's counter.
	version uint64
	// sampleRng is the dedicated seeded sampling stream (same
	// derivation as the core engine's).
	sampleRng *rand.Rand
}

func newMPSBackend(qubits, chi int, seed int64, fuse bool) (*mpsBackend, error) {
	if qubits > 62 {
		// Amplitude indices and sample outcomes are uint64s, so the
		// facade's register cap is 62 qubits on every backend — the
		// MPS could represent more, but could not report on them.
		return nil, fmt.Errorf("%w: %d qubits exceeds the 62-qubit register cap", ErrBadConfig, qubits)
	}
	st, err := mps.New(qubits, chi)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	b := &mpsBackend{st: st, chi: chi, fuse: fuse, sampleRng: core.SampleStream(seed)}
	b.maxFootprint = st.MemoryBytes()
	return b, nil
}

func (b *mpsBackend) Name() string { return BackendMPS }
func (b *mpsBackend) Qubits() int  { return b.st.Qubits() }

// RunControlled applies the circuit gate-at-a-time, honoring the same
// control contract as the compressed engine: PollAbort checked before
// every gate (an abort keeps the completed prefix and wraps the hook's
// error), OnGate after every completed gate.
func (b *mpsBackend) RunControlled(c *circuit.Circuit, ctl core.RunControl) error {
	if c.N != b.st.Qubits() {
		return fmt.Errorf("%w: mps backend: circuit has %d qubits, simulator %d", ErrCircuitMismatch, c.N, b.st.Qubits())
	}
	if b.fuse {
		c = quantum.FuseSingleQubitGates(c)
	}
	if len(c.Gates) > 0 {
		b.version++
	}
	start := time.Now()
	defer func() {
		b.computeTime += time.Since(start)
		if fp := b.st.MemoryBytes(); fp > b.maxFootprint {
			b.maxFootprint = fp
		}
	}()
	executed := 0
	for gi, g := range c.Gates {
		if ctl.PollAbort != nil {
			if aerr := ctl.PollAbort(); aerr != nil {
				b.gatesRun += executed
				return fmt.Errorf("mps backend: run aborted after %d of %d gates: %w",
					executed, len(c.Gates), aerr)
			}
		}
		if err := b.st.ApplyGate(g); err != nil {
			b.gatesRun += executed
			return fmt.Errorf("mps backend: run failed after %d of %d gates: %w",
				executed, len(c.Gates), err)
		}
		executed++
		if ctl.OnGate != nil {
			ctl.OnGate(gi, len(c.Gates), g)
		}
	}
	b.gatesRun += executed
	return nil
}

func (b *mpsBackend) Reset() error {
	b.st.Reset()
	b.version++
	return nil
}

func (b *mpsBackend) SetBasisState(idx uint64) error {
	b.st.SetBasisState(idx)
	b.version++
	return nil
}

// Accounting. Footprint is the live tensor storage; MaxBond and the
// truncation count surface through Stats (Escalations carries the
// number of truncating SVDs — the MPS analog of lossy-bound
// escalations, each one a recorded fidelity loss).
func (b *mpsBackend) GatesRun() int               { return b.gatesRun }
func (b *mpsBackend) Measurements() []int         { return nil }
func (b *mpsBackend) MeasurementCount() int       { return 0 }
func (b *mpsBackend) FidelityLowerBound() float64 { return b.st.FidelityLowerBound() }
func (b *mpsBackend) CompressedFootprint() int64  { return b.st.MemoryBytes() }
func (b *mpsBackend) BytesMoved() int64           { return 0 }
func (b *mpsBackend) OverBudget() bool            { return false }

func (b *mpsBackend) CompressionRatio() float64 {
	fp := b.st.MemoryBytes()
	if fp == 0 {
		return 0
	}
	return MemoryRequirement(b.st.Qubits()) / float64(fp)
}

func (b *mpsBackend) Stats() Stats {
	return Stats{
		ComputeTime:      b.computeTime,
		Gates:            b.gatesRun,
		CurrentFootprint: b.st.MemoryBytes(),
		MaxFootprint:     b.maxFootprint,
		Escalations:      b.st.Truncations,
	}
}

// Inspection by contraction.

func (b *mpsBackend) Amplitude(idx uint64) (complex128, error) { return b.st.Amplitude(idx), nil }
func (b *mpsBackend) Norm() (float64, error)                   { return b.st.Norm(), nil }

func (b *mpsBackend) FullState() ([]complex128, error) { return b.st.Dense() }

func (b *mpsBackend) ProbabilityOne(q int) (float64, error) { return b.st.ProbabilityOne(q) }
func (b *mpsBackend) ExpectationZ(q int) (float64, error)   { return b.st.ExpectationZ(q) }
func (b *mpsBackend) ExpectationZZ(a, c int) (float64, error) {
	return b.st.ExpectationZZ(a, c)
}

func (b *mpsBackend) MaxCutEnergy(edges []core.CutEdge) (float64, error) {
	qe := make([]quantum.Edge, len(edges))
	for i, e := range edges {
		qe[i] = quantum.Edge{U: e.U, V: e.V}
	}
	return b.st.MaxCutEnergy(qe)
}

// Assertions need joint distributions over the full register; route
// callers to the compressed backend.

func (b *mpsBackend) AssertClassical(q, value int, tol float64) error {
	return b.unsupported("assert")
}
func (b *mpsBackend) AssertSuperposition(q int, tol float64) error {
	return b.unsupported("assert")
}
func (b *mpsBackend) AssertProduct(a, c int, tol float64) error {
	return b.unsupported("assert")
}

// Checkpointing is compressed-engine territory.

func (b *mpsBackend) Save(w io.Writer) error { return b.unsupported("checkpoint") }
func (b *mpsBackend) Load(r io.Reader) error { return b.unsupported("checkpoint") }

// Close: the MPS engine holds no resources beyond RAM.
func (b *mpsBackend) Close() error { return nil }

// unsupported reports op through the mps package's typed error so the
// facade sentinel (ErrUnsupportedOp) and the structured
// *mps.UnsupportedOpError both match.
func (b *mpsBackend) unsupported(op string) error {
	return &mps.UnsupportedOpError{Op: op,
		Reason: "requires full-state access; use the compressed backend"}
}

// mpsSampler adapts mps.Sampler to the facade contract: drawn from the
// backend's dedicated seeded stream and invalidated by any state
// mutation since construction.
type mpsSampler struct {
	b       *mpsBackend
	sp      *mps.Sampler
	version uint64
}

// NewSampler builds the right-environment tables in one O(n·χ³) sweep.
// cacheLines is the compressed engine's decompressed-block LRU size; an
// MPS has no blocks to cache, so it is ignored.
func (b *mpsBackend) NewSampler(cacheLines int) (backendSampler, error) {
	sp, err := b.st.NewSampler()
	if err != nil {
		return nil, err
	}
	return &mpsSampler{b: b, sp: sp, version: b.version}, nil
}

func (s *mpsSampler) Sample(shots int) ([]uint64, error) {
	if s.version != s.b.version {
		return nil, fmt.Errorf("%w (mps backend)", ErrStaleSampler)
	}
	return s.sp.Sample(s.b.sampleRng, shots)
}

func (s *mpsSampler) TotalMass() float64 { return s.sp.TotalMass() }
