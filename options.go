package qcsim

import (
	"fmt"

	"qcsim/internal/compress/registry"
	"qcsim/internal/core"
)

// DefaultErrorLevels are the paper's five pointwise relative error
// bounds, tightest first. Level 0 (not listed) is always the lossless
// stage; WithMemoryBudget makes the engine escalate through these
// whenever the compressed footprint exceeds the budget.
var DefaultErrorLevels = core.DefaultErrorLevels

// settings accumulates functional options before New resolves them into
// the engine configuration. Option errors are deferred: the first one
// is reported by New, wrapped in ErrBadConfig (or ErrUnknownCodec for
// codec-name lookups).
type settings struct {
	cfg         core.Config
	codecName   string
	noiseProb   float64
	sampleCache int
	backend     string
	bondDim     int
	variants    int
	transport   string
	workerCmd   []string
}

// Option configures a Simulator at construction. Options are applied in
// order; later options override earlier ones.
type Option func(*settings)

// WithRanks partitions the state across r SPMD ranks (goroutine
// "nodes"; power of two). Default 1.
func WithRanks(r int) Option {
	return func(s *settings) { s.cfg.Ranks = r }
}

// WithWorkers sets the intra-rank worker-pool width: how many
// goroutines fan out over one rank's block loop. Results are
// bit-identical for every worker count. Default NumCPU/ranks.
func WithWorkers(w int) Option {
	return func(s *settings) { s.cfg.Workers = w }
}

// WithBlockAmps sets the number of amplitudes per compressed block
// (power of two; the paper uses 2^20). Default 4096.
func WithBlockAmps(n int) Option {
	return func(s *settings) { s.cfg.BlockAmps = n }
}

// WithMemoryBudget caps the per-rank compressed footprint in bytes.
// Exceeding it relaxes the error bound one level per gate boundary (the
// paper's §3.7 adaptive pipeline). 0 (the default) means unlimited —
// the simulation stays lossless. If a run ends with the footprint still
// over budget at the loosest bound, Run reports ErrBudgetExceeded.
func WithMemoryBudget(bytes int64) Option {
	return func(s *settings) { s.cfg.MemoryBudget = bytes }
}

// WithErrorLevels replaces the escalation ladder of pointwise relative
// error bounds (strictly increasing, tightest first). Default
// DefaultErrorLevels.
func WithErrorLevels(bounds ...float64) Option {
	return func(s *settings) { s.cfg.ErrorLevels = append([]float64(nil), bounds...) }
}

// WithCodec selects the error-bounded codec used for lossy levels by
// registry name or alias (e.g. "xor-c", "sz-a", "solution-d"; see
// Codecs for the full list, RegisterCodec to add entries). The level-0
// lossless stage is unaffected. Default "xor-c", the paper's
// Solution C.
func WithCodec(name string) Option {
	return func(s *settings) { s.codecName = name }
}

// WithCache enables the compressed block cache with the given number of
// LRU lines (the paper's §3.4 uses 64). 0 (the default) disables it.
func WithCache(lines int) Option {
	return func(s *settings) { s.cfg.CacheLines = lines }
}

// DefaultSampleCache is the number of decompressed blocks a Sampler
// keeps hot when WithSampleCache is not given.
const DefaultSampleCache = 8

// WithSampleCache sets how many decompressed blocks the streaming
// sampler (Sampler, Sample) keeps in its LRU, so shots clustered in the
// same blocks skip repeated codec work. Each line holds one block
// uncompressed (16·BlockAmps bytes). Values below 1 are clamped to 1 —
// the current block always stays hot. Default DefaultSampleCache.
func WithSampleCache(lines int) Option {
	// Clamp here, not in resolve: there a zero means "option not given"
	// and selects DefaultSampleCache, so an explicit 0 must become 1
	// before it reaches the settings.
	if lines < 1 {
		lines = 1
	}
	return func(s *settings) { s.sampleCache = lines }
}

// DefaultBondDim is the MPS bond-dimension cap χ when WithBondDim is
// not given: large enough for GHZ-like and shallow-entangling circuits
// (χ grows as 2^depth of entangling structure), small enough that a
// truncating run is obvious from the fidelity ledger.
const DefaultBondDim = 64

// WithBackend selects the simulation engine: BackendCompressed (the
// default — the paper's compressed full-state engine), BackendMPS (the
// §2.2 tensor-network comparator: polynomial memory for
// low-entanglement circuits up to the 62-qubit register cap, but
// measurement,
// multi-controlled gates, assertions, checkpointing, and noise report
// ErrUnsupportedOp or ErrBadConfig), or BackendAuto (decide at the
// first Run from the circuit's two-qubit-gate structure: MPS when the
// estimated bond dimension fits WithBondDim's budget and every gate is
// MPS-runnable, compressed otherwise). While an auto decision is open,
// inspection runs on a provisional engine without closing it;
// operations only the compressed engine supports (Save, Load, the
// Assert* methods) close the decision in its favor, exactly like a
// circuit at Run. Unknown names report ErrBadConfig from New.
func WithBackend(name string) Option {
	return func(s *settings) { s.backend = name }
}

// WithBondDim caps the MPS bond dimension χ (≥ 2): the entanglement
// budget of the mps backend, and the selection threshold of the auto
// backend. Two-qubit gates whose SVD spectrum exceeds χ truncate, and
// the discarded weight multiplies into FidelityLowerBound exactly like
// the compressed engine's Eq. 11 ledger. Memory scales as O(n·χ²).
// Ignored by the compressed backend. Default DefaultBondDim.
func WithBondDim(chi int) Option {
	return func(s *settings) { s.bondDim = chi }
}

// WithVariants declares the batch width K a job will run at
// (Simulator.RunBatch with K bindings, or a parameter-shift Gradient
// whose circuit has (K-1)/2 parameter occurrences). The option does not
// change how a Simulator executes — RunBatch takes its width from the
// binding list — but it changes how EstimateCircuit prices the job: a
// K-variant batch holds K state copies in the worst case, so
// UncompressedBytes scales by K and the job is pinned to the compressed
// backend (lockstep batching is compressed-only). Admission layers
// (qcserve) reserve against that K-variant ceiling. Values below 1 are
// ErrBadConfig; 1 (the default) is an ordinary solo run.
func WithVariants(k int) Option {
	return func(s *settings) { s.variants = k }
}

// WithNoise installs a quantum-trajectories depolarizing channel: after
// each gate, with probability prob (in [0,1)), a uniformly random Pauli
// hits the gate's target qubit. Default 0 (noiseless).
func WithNoise(prob float64) Option {
	return func(s *settings) { s.noiseProb = prob }
}

// WithSeed seeds every random stream the simulator owns — measurement
// collapse, the noise channel, and Sample — making runs fully
// deterministic. Default 0.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.cfg.Seed = seed }
}

// WithGateFusion folds runs of adjacent single-qubit gates on the same
// target into one unitary before execution, cutting the per-gate
// decompress/recompress sweeps proportionally.
func WithGateFusion(enabled bool) Option {
	return func(s *settings) { s.cfg.FuseGates = enabled }
}

// WithSweeps toggles the sweep scheduler (default on): maximal runs of
// consecutive block-local gates — target and controls all inside one
// compressed block's offset bits — execute with a single decompress →
// apply-all → recompress pass per block instead of one codec round trip
// per gate. A sweep is broken by cross-block or cross-rank targets,
// controls outside the offset bits, measurements, and (when WithNoise
// is set) every gate, since the depolarizing channel fires per gate.
// Sweeps are bit-identical to gate-at-a-time execution under the
// lossless codec; under a lossy budget the state sees fewer truncations
// and the Eq. 11 fidelity ledger charges one (1-δ) factor per sweep —
// the bound only tightens. Stats reports Sweeps, SweepGates, and
// CodecPassesSaved. Disable only to reproduce the paper's exact
// one-pass-per-gate cost model.
func WithSweeps(enabled bool) Option {
	return func(s *settings) { s.cfg.DisableSweeps = !enabled }
}

// WithUncompressed disables compression entirely (blocks stored raw) —
// the Intel-QS-equivalent baseline the paper compares against.
func WithUncompressed(enabled bool) Option {
	return func(s *settings) { s.cfg.Uncompressed = enabled }
}

// WithSpill enables the tiered block store: each rank keeps at most
// ramBudget bytes of compressed blocks resident and spills the
// coldest to a per-rank temp file under dir, prefetched back in block
// order ahead of the sweep and sampler passes. States whose
// compressed footprint exceeds RAM complete out of core instead of
// escalating the §3.7 error ladder — the budget set by
// WithMemoryBudget presses on the resident bytes, so a state that
// fits on disk never degrades and never reports ErrBudgetExceeded.
// Results stay bit-identical to an unspilled run.
//
// dir == "" uses os.TempDir(); ramBudget == 0 adopts WithMemoryBudget's
// value (New reports ErrBadConfig if both are zero; a negative budget
// is always ErrBadConfig). Spill I/O failures — an unwritable dir at
// New, a failed write mid-run — wrap ErrSpill. Call Simulator.Close
// to remove the spill files; they live under dir until then.
// Compressed backend only; the mps backend ignores it.
func WithSpill(dir string, ramBudget int64) Option {
	return func(s *settings) {
		s.cfg.SpillDir = dir
		s.cfg.SpillRAMBudget = ramBudget
	}
}

// Transport names accepted by WithTransport.
const (
	// TransportInProcess is the default rank runtime: every SPMD rank
	// is a goroutine of this process, exchanging halves over channels.
	TransportInProcess = "inprocess"
	// TransportTCP runs every rank as a separate OS process connected
	// over loopback (or LAN) TCP. Each Run ships the compressed state
	// to worker processes, executes there, and merges the results back
	// — bit-identical to the in-process transport for a single Run:
	// amplitudes, fidelity ledger, measurement outcomes, sampling, and
	// the deterministic Stats counters all match. See the package
	// documentation's "Distribution" section for the lifecycle and
	// failure semantics.
	TransportTCP = "tcp"
)

// WithTransport selects the rank runtime: TransportInProcess (the
// default) or TransportTCP. The TCP transport requires the compressed
// backend (the default; mps and auto report ErrBadConfig) and spawns
// one worker process per rank at each Run — see WithWorkerCommand.
// A worker dying mid-run surfaces as an error wrapping ErrRankDied on
// every surviving rank, within a bounded timeout, and leaves the
// coordinator's pre-run state intact. Unknown names report
// ErrBadConfig from New.
func WithTransport(name string) Option {
	return func(s *settings) { s.transport = name }
}

// WithWorkerCommand sets the argv the TCP transport spawns once per
// rank; each child receives the coordinator's address in the
// QCSIM_COORD_ADDR environment variable and must call
// qcsim.RankWorker with it (the stock cmd/qcrank binary does exactly
// that, and is the default: "qcrank" resolved through PATH). Only
// meaningful with WithTransport(TransportTCP); otherwise New reports
// ErrBadConfig.
func WithWorkerCommand(argv ...string) Option {
	return func(s *settings) { s.workerCmd = append([]string(nil), argv...) }
}

// resolve turns the accumulated settings into a core configuration,
// resolving the codec name through the registry.
func (s *settings) resolve(qubits int) (core.Config, float64, error) {
	cfg := s.cfg
	cfg.Qubits = qubits
	if s.sampleCache == 0 {
		s.sampleCache = DefaultSampleCache
	}
	if s.codecName != "" {
		codec, err := registry.New(s.codecName)
		if err != nil {
			return cfg, 0, fmt.Errorf("%w: %q (have %v)", ErrUnknownCodec, s.codecName, Codecs())
		}
		cfg.Lossy = codec
	}
	if s.noiseProb < 0 || s.noiseProb >= 1 {
		return cfg, 0, fmt.Errorf("%w: depolarizing probability %v out of [0,1)", ErrBadConfig, s.noiseProb)
	}
	if s.variants == 0 {
		s.variants = 1
	}
	if s.variants < 1 {
		return cfg, 0, fmt.Errorf("%w: variant count %d (need ≥ 1)", ErrBadConfig, s.variants)
	}
	if s.bondDim == 0 {
		s.bondDim = DefaultBondDim
	}
	if s.bondDim < 2 {
		return cfg, 0, fmt.Errorf("%w: bond dimension %d too small (need ≥ 2)", ErrBadConfig, s.bondDim)
	}
	switch s.backend {
	case "", BackendCompressed, BackendMPS, BackendAuto:
	default:
		return cfg, 0, fmt.Errorf("%w: unknown backend %q (have %q, %q, %q)",
			ErrBadConfig, s.backend, BackendCompressed, BackendMPS, BackendAuto)
	}
	if s.backend == BackendMPS && s.noiseProb > 0 {
		return cfg, 0, fmt.Errorf("%w: the mps backend has no noise channel (use the compressed backend)", ErrBadConfig)
	}
	switch s.transport {
	case "", TransportInProcess, TransportTCP:
	default:
		return cfg, 0, fmt.Errorf("%w: unknown transport %q (have %q, %q)",
			ErrBadConfig, s.transport, TransportInProcess, TransportTCP)
	}
	if s.transport == TransportTCP && (s.backend == BackendMPS || s.backend == BackendAuto) {
		return cfg, 0, fmt.Errorf("%w: the %s transport distributes the compressed engine only (drop WithBackend(%q))",
			ErrBadConfig, TransportTCP, s.backend)
	}
	if len(s.workerCmd) > 0 && s.transport != TransportTCP {
		return cfg, 0, fmt.Errorf("%w: WithWorkerCommand requires WithTransport(%q)", ErrBadConfig, TransportTCP)
	}
	if s.workerCmd != nil && (len(s.workerCmd) == 0 || s.workerCmd[0] == "") {
		return cfg, 0, fmt.Errorf("%w: empty worker command", ErrBadConfig)
	}
	return cfg, s.noiseProb, nil
}
