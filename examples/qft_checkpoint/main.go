// Deep QFT with checkpoint/restart — the paper's §3.5 workflow for
// 24-hour wall-time limits: run half the circuit, save the compressed
// blocks, "resubmit" (a fresh simulator), load, and finish. The final
// state matches an uninterrupted run exactly.
//
//	go run ./examples/qft_checkpoint
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"qcsim"
	"qcsim/circuit"
)

func main() {
	const n = 14
	ctx := context.Background()
	full := circuit.QFT(n, 5)
	half := len(full.Gates) / 2
	opts := []qcsim.Option{qcsim.WithRanks(2), qcsim.WithBlockAmps(2048), qcsim.WithSeed(3)}

	// Job 1: first half, then checkpoint before the wall-time "limit".
	job1, err := qcsim.New(n, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := job1.Run(ctx, &circuit.Circuit{N: n, Gates: full.Gates[:half]}); err != nil {
		log.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := job1.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 1: %d/%d gates, checkpoint %s (state is %s uncompressed)\n",
		half, len(full.Gates), qcsim.FormatBytes(float64(ckpt.Len())),
		qcsim.FormatBytes(qcsim.MemoryRequirement(n)))

	// Job 2: fresh simulator, resume, finish.
	job2, err := qcsim.New(n, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if err := job2.Load(bytes.NewReader(ckpt.Bytes())); err != nil {
		log.Fatal(err)
	}
	if _, err := job2.Run(ctx, &circuit.Circuit{N: n, Gates: full.Gates[half:]}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 2: resumed at gate %d, finished all %d gates\n", half, job2.GatesRun())

	// Verify against an uninterrupted run.
	ref, err := qcsim.New(n, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ref.Run(ctx, full); err != nil {
		log.Fatal(err)
	}
	a, _ := job2.FullState()
	b, _ := ref.FullState()
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("resumed state diverges at amplitude %d", i)
		}
	}
	fmt.Println("resumed state matches the uninterrupted run bit-for-bit")
}
