// QAOA with intermediate measurement and statistical assertions — the
// software-debugging workflow the paper argues full-state simulation
// enables (§1): assert mid-circuit properties, measure a qubit halfway,
// and keep simulating the collapsed state.
//
//	go run ./examples/qaoa
package main

import (
	"fmt"
	"log"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
)

func main() {
	const n = 12
	sim, err := core.New(core.Config{Qubits: n, Ranks: 2, BlockAmps: 1024, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the mixing layer puts every qubit in uniform
	// superposition — assert it.
	prep := quantum.NewCircuit(n)
	for q := 0; q < n; q++ {
		prep.H(q)
	}
	if err := sim.Run(prep); err != nil {
		log.Fatal(err)
	}
	for q := 0; q < n; q++ {
		if err := sim.AssertSuperposition(q, 1e-9); err != nil {
			log.Fatalf("after H layer: %v", err)
		}
	}
	fmt.Println("assertion passed: all qubits in uniform superposition after mixing")

	// Phase 2: one QAOA round (cost + mixer), skipping the H prefix
	// already applied.
	full := quantum.QAOA(n, 1, 99)
	round := &quantum.Circuit{N: n, Gates: full.Gates[n:]}
	if err := sim.Run(round); err != nil {
		log.Fatal(err)
	}

	// Phase 3: intermediate measurement of qubit 0, then further
	// evolution of the collapsed state.
	mid := quantum.NewCircuit(n)
	mid.Measure(0)
	mid.CNOT(0, 1) // classical feed-forward pattern
	if err := sim.Run(mid); err != nil {
		log.Fatal(err)
	}
	out := sim.Measurements()[0]
	fmt.Printf("intermediate measurement of q0: %d\n", out)
	if err := sim.AssertClassical(0, out, 1e-9); err != nil {
		log.Fatalf("collapse check: %v", err)
	}
	fmt.Println("assertion passed: q0 classical after measurement")

	p1, _ := sim.ProbabilityOne(1)
	fmt.Printf("P(q1=1) after feed-forward CNOT: %.4f\n", p1)
	fmt.Printf("fidelity lower bound: %.6f\n", sim.FidelityLowerBound())
}
