// QAOA with intermediate measurement and statistical assertions — the
// software-debugging workflow the paper argues full-state simulation
// enables (§1): assert mid-circuit properties, measure a qubit halfway,
// and keep simulating the collapsed state.
//
//	go run ./examples/qaoa
package main

import (
	"context"
	"fmt"
	"log"

	"qcsim"
	"qcsim/circuit"
)

func main() {
	const n = 12
	ctx := context.Background()
	sim, err := qcsim.New(n, qcsim.WithRanks(2), qcsim.WithBlockAmps(1024), qcsim.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: the mixing layer puts every qubit in uniform
	// superposition — assert it.
	prep := circuit.New(n)
	for q := 0; q < n; q++ {
		prep.H(q)
	}
	if _, err := sim.Run(ctx, prep); err != nil {
		log.Fatal(err)
	}
	for q := 0; q < n; q++ {
		if err := sim.AssertSuperposition(q, 1e-9); err != nil {
			log.Fatalf("after H layer: %v", err)
		}
	}
	fmt.Println("assertion passed: all qubits in uniform superposition after mixing")

	// Phase 2: one QAOA round (cost + mixer), skipping the H prefix
	// already applied.
	full := circuit.QAOA(n, 1, 99)
	round := &circuit.Circuit{N: n, Gates: full.Gates[n:]}
	if _, err := sim.Run(ctx, round); err != nil {
		log.Fatal(err)
	}

	// Phase 3: intermediate measurement of qubit 0, then further
	// evolution of the collapsed state.
	mid := circuit.New(n)
	mid.Measure(0)
	mid.CNOT(0, 1) // classical feed-forward pattern
	res, err := sim.Run(ctx, mid)
	if err != nil {
		log.Fatal(err)
	}
	out := res.Measurements[0]
	fmt.Printf("intermediate measurement of q0: %d\n", out)
	if err := sim.AssertClassical(0, out, 1e-9); err != nil {
		log.Fatalf("collapse check: %v", err)
	}
	fmt.Println("assertion passed: q0 classical after measurement")

	p1, _ := sim.ProbabilityOne(1)
	fmt.Printf("P(q1=1) after feed-forward CNOT: %.4f\n", p1)
	fmt.Printf("fidelity lower bound: %.6f\n", res.FidelityLowerBound)
}
