// Textbook algorithms on the compressed engine: phase estimation,
// Bernstein–Vazirani, and a MAXCUT energy readout — the workloads whose
// evaluation the paper's introduction motivates, all running on
// compressed state through the public facade.
//
//	go run ./examples/algorithms
package main

import (
	"context"
	"fmt"
	"log"

	"qcsim"
	"qcsim/circuit"
)

func main() {
	phaseEstimation()
	bernsteinVazirani()
	maxcutReadout()
}

func phaseEstimation() {
	// Estimate φ = 3/8 of U = diag(1, e^{2πiφ}) with 3 counting qubits.
	const t = 3
	cir := circuit.PhaseEstimation(t, 3.0/8.0)
	sim, err := qcsim.New(cir.N, qcsim.WithRanks(2), qcsim.WithBlockAmps(4))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), cir); err != nil {
		log.Fatal(err)
	}
	// The counting register reads the binary expansion 0.011 = 3.
	want := uint64(3) | 1<<uint(t) // eigenstate qubit stays |1⟩
	a, _ := sim.Amplitude(want)
	p := real(a)*real(a) + imag(a)*imag(a)
	fmt.Printf("phase estimation: P(counting=3) = %.4f (φ·2^%d = 3)\n", p, t)
	if p < 0.99 {
		log.Fatal("phase estimation failed")
	}
}

func bernsteinVazirani() {
	const n = 10
	secret := uint64(0b1011010011)
	cir := circuit.BernsteinVazirani(n, secret)
	sim, err := qcsim.New(cir.N, qcsim.WithRanks(2), qcsim.WithBlockAmps(64))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), cir); err != nil {
		log.Fatal(err)
	}
	// Read the register via ⟨Z⟩ signs: ⟨Z_q⟩ = -1 where the secret bit
	// is 1.
	var recovered uint64
	for q := 0; q < n; q++ {
		z, err := sim.ExpectationZ(q)
		if err != nil {
			log.Fatal(err)
		}
		if z < 0 {
			recovered |= 1 << uint(q)
		}
	}
	fmt.Printf("bernstein-vazirani: secret %0*b recovered as %0*b\n", n, secret, n, recovered)
	if recovered != secret {
		log.Fatal("secret mismatch")
	}
}

func maxcutReadout() {
	const n = 10
	edges := circuit.RandomRegularGraph(n, 4, 77)
	cir := circuit.QAOA(n, 2, 77)
	sim, err := qcsim.New(n, qcsim.WithRanks(2), qcsim.WithBlockAmps(64))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), cir); err != nil {
		log.Fatal(err)
	}
	energy, err := sim.MaxCutEnergy(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qaoa maxcut: ⟨cut⟩ = %.3f of %d edges (angles unoptimized; random-guess reference %.1f)\n",
		energy, len(edges), float64(len(edges))/2)
}
