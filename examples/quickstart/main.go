// Quickstart: build a GHZ state on the compressed-state simulator
// through the public qcsim facade, inspect amplitudes, and see how
// small the compressed state stays.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"qcsim"
	"qcsim/circuit"
)

func main() {
	const qubits = 16

	// A simulator with 4 ranks (goroutine "nodes") and 4096-amplitude
	// blocks, every block kept compressed in memory.
	sim, err := qcsim.New(qubits, qcsim.WithRanks(4), qcsim.WithBlockAmps(4096))
	if err != nil {
		log.Fatal(err)
	}

	// |GHZ⟩ = (|0...0⟩ + |1...1⟩)/√2 — maximally structured, so the
	// lossless stage compresses it enormously. RunProgress reports each
	// completed gate.
	gates := 0
	res, err := sim.RunProgress(context.Background(), circuit.GHZ(qubits), func(ev qcsim.ProgressEvent) {
		gates = ev.Gate + 1
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d/%d gates\n", gates, res.Gates)

	a0, _ := sim.Amplitude(0)
	a1, _ := sim.Amplitude(1<<qubits - 1)
	fmt.Printf("⟨0...0|ψ⟩ = %.4f, ⟨1...1|ψ⟩ = %.4f\n", a0, a1)

	req := qcsim.MemoryRequirement(qubits)
	fmt.Printf("uncompressed state: %s\n", qcsim.FormatBytes(req))
	fmt.Printf("compressed state:   %s (ratio %.0f:1)\n",
		qcsim.FormatBytes(float64(res.Footprint)), res.CompressionRatio)
	fmt.Printf("fidelity lower bound: %.6f (lossless: nothing lost)\n", res.FidelityLowerBound)
}
