// Quickstart: build a GHZ state on the compressed-state simulator,
// inspect amplitudes, and see how small the compressed state stays.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
	"qcsim/internal/stats"
)

func main() {
	const qubits = 16

	// A simulator with 4 ranks (goroutine "nodes") and 4096-amplitude
	// blocks, every block kept compressed in memory.
	sim, err := core.New(core.Config{Qubits: qubits, Ranks: 4, BlockAmps: 4096})
	if err != nil {
		log.Fatal(err)
	}

	// |GHZ⟩ = (|0...0⟩ + |1...1⟩)/√2 — maximally structured, so the
	// lossless stage compresses it enormously.
	if err := sim.Run(quantum.GHZ(qubits)); err != nil {
		log.Fatal(err)
	}

	a0, _ := sim.Amplitude(0)
	a1, _ := sim.Amplitude(1<<qubits - 1)
	fmt.Printf("⟨0...0|ψ⟩ = %.4f, ⟨1...1|ψ⟩ = %.4f\n", a0, a1)

	req := core.MemoryRequirement(qubits)
	fmt.Printf("uncompressed state: %s\n", stats.FormatBytes(req))
	fmt.Printf("compressed state:   %s (ratio %.0f:1)\n",
		stats.FormatBytes(float64(sim.CompressedFootprint())), sim.CompressionRatio())
	fmt.Printf("fidelity lower bound: %.6f (lossless: nothing lost)\n", sim.FidelityLowerBound())
}
