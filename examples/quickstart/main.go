// Quickstart: build a GHZ state through the public qcsim facade,
// inspect amplitudes, and see how small the state stays — on the
// compressed-state engine (default) or the MPS backend:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -backend mps -qubits 40
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"qcsim"
	"qcsim/circuit"
)

func main() {
	backend := flag.String("backend", "compressed", "simulation engine: compressed|mps|auto")
	qubits := flag.Int("qubits", 16, "register width")
	flag.Parse()

	// A simulator with 4 ranks (goroutine "nodes") and 4096-amplitude
	// blocks, every block kept compressed in memory. The rank/block
	// geometry applies to the compressed engine; the mps backend stores
	// one bond-capped tensor per qubit instead.
	sim, err := qcsim.New(*qubits,
		qcsim.WithBackend(*backend),
		qcsim.WithRanks(4),
		qcsim.WithBlockAmps(4096))
	if err != nil {
		log.Fatal(err)
	}

	// |GHZ⟩ = (|0...0⟩ + |1...1⟩)/√2 — maximally structured, so both
	// engines represent it tiny: the lossless codec compresses it
	// enormously, and an MPS holds it at bond dimension 2. RunProgress
	// reports each completed gate.
	gates := 0
	res, err := sim.RunProgress(context.Background(), circuit.GHZ(*qubits), func(ev qcsim.ProgressEvent) {
		gates = ev.Gate + 1
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d/%d gates on the %s backend\n", gates, res.Gates, sim.Backend())

	a0, _ := sim.Amplitude(0)
	a1, _ := sim.Amplitude(1<<uint(*qubits) - 1)
	fmt.Printf("⟨0...0|ψ⟩ = %.4f, ⟨1...1|ψ⟩ = %.4f\n", a0, a1)

	req := qcsim.MemoryRequirement(*qubits)
	fmt.Printf("uncompressed state: %s\n", qcsim.FormatBytes(req))
	fmt.Printf("in-memory state:    %s (ratio %.0f:1)\n",
		qcsim.FormatBytes(float64(res.Footprint)), res.CompressionRatio)
	fmt.Printf("fidelity lower bound: %.6f (lossless: nothing lost)\n", res.FidelityLowerBound)
}
