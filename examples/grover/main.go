// Grover under memory pressure: the paper's headline workload. A
// 13-qubit Grover search (8-qubit register + Toffoli-ladder ancillas)
// runs inside a memory budget far below the uncompressed requirement,
// exactly how the 61-qubit run fits 32 EB of state into 768 TB.
//
//	go run ./examples/grover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qcsim"
	"qcsim/circuit"
)

func main() {
	const search = 8 // search register width; 2s-3 = 13 qubits total
	marked := uint64(0xA7 & (1<<search - 1))
	iters := circuit.GroverOptimalIterations(search)
	cir := circuit.Grover(search, marked, iters)

	req := qcsim.MemoryRequirement(cir.N)
	budget := int64(req * 0.05) // 5% of the uncompressed requirement
	sim, err := qcsim.New(cir.N,
		qcsim.WithRanks(2),
		qcsim.WithBlockAmps(2048),
		qcsim.WithMemoryBudget(budget/2), // per rank
		qcsim.WithCache(64),
		qcsim.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Grover: %d qubits, %d gates, %d iterations, marked |%0*b⟩\n",
		cir.N, len(cir.Gates), iters, search, marked)
	fmt.Printf("state requires %s uncompressed; budget %s\n",
		qcsim.FormatBytes(req), qcsim.FormatBytes(float64(budget)))

	start := time.Now()
	res, err := sim.Run(context.Background(), cir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated in %v, peak footprint %s (min ratio %.1f:1)\n",
		time.Since(start).Round(time.Millisecond),
		qcsim.FormatBytes(float64(res.Stats.MaxFootprint)),
		res.Stats.MinCompressionRatio(req))

	// Sample the search register from the simulator's own seeded
	// stream: the marked element dominates.
	samples, err := sim.Sample(200)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, v := range samples {
		if v&(1<<search-1) == marked && v>>search == 0 {
			hits++
		}
	}
	fmt.Printf("marked element sampled %d/200 times (fidelity bound %.4f)\n",
		hits, res.FidelityLowerBound)
	if hits < 150 {
		log.Fatalf("amplification failed: only %d hits", hits)
	}
}
