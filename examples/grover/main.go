// Grover under memory pressure: the paper's headline workload. A
// 13-qubit Grover search (8-qubit register + Toffoli-ladder ancillas)
// runs inside a memory budget far below the uncompressed requirement,
// exactly how the 61-qubit run fits 32 EB of state into 768 TB.
//
//	go run ./examples/grover
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"qcsim/internal/core"
	"qcsim/internal/quantum"
	"qcsim/internal/stats"
)

func main() {
	const search = 8 // search register width; 2s-3 = 13 qubits total
	marked := uint64(0xA7 & (1<<search - 1))
	iters := quantum.GroverOptimalIterations(search)
	cir := quantum.Grover(search, marked, iters)

	req := core.MemoryRequirement(cir.N)
	budget := int64(req * 0.05) // 5% of the uncompressed requirement
	sim, err := core.New(core.Config{
		Qubits:       cir.N,
		Ranks:        2,
		BlockAmps:    2048,
		MemoryBudget: budget / 2, // per rank
		CacheLines:   64,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Grover: %d qubits, %d gates, %d iterations, marked |%0*b⟩\n",
		cir.N, len(cir.Gates), iters, search, marked)
	fmt.Printf("state requires %s uncompressed; budget %s\n",
		stats.FormatBytes(req), stats.FormatBytes(float64(budget)))

	start := time.Now()
	if err := sim.Run(cir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated in %v, peak footprint %s (min ratio %.1f:1)\n",
		time.Since(start).Round(time.Millisecond),
		stats.FormatBytes(float64(sim.Stats().MaxFootprint)),
		sim.Stats().MinCompressionRatio(req))

	// Sample the search register: the marked element dominates.
	rng := rand.New(rand.NewSource(42))
	samples, err := sim.Sample(rng, 200)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, v := range samples {
		if v&(1<<search-1) == marked && v>>search == 0 {
			hits++
		}
	}
	fmt.Printf("marked element sampled %d/200 times (fidelity bound %.4f)\n",
		hits, sim.FidelityLowerBound())
	if hits < 150 {
		log.Fatalf("amplification failed: only %d hits", hits)
	}
}
