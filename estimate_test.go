package qcsim

import (
	"context"
	"errors"
	"testing"

	"qcsim/circuit"
)

func TestEstimateCircuitRouting(t *testing.T) {
	ghz := circuit.GHZ(40)
	est, err := EstimateCircuit(40, ghz)
	if err != nil {
		t.Fatal(err)
	}
	if !est.MPSRunnable {
		t.Fatal("GHZ-40 must be MPS-runnable")
	}
	if est.BondDim != 2 {
		t.Fatalf("GHZ bond estimate = %d, want 2", est.BondDim)
	}
	if est.Backend != BackendMPS {
		t.Fatalf("GHZ-40 should route to mps, got %q", est.Backend)
	}
	if est.MPSBytes <= 0 || est.MPSBytes > 1<<20 {
		t.Fatalf("GHZ-40 MPS estimate %d bytes implausible", est.MPSBytes)
	}
	if est.UncompressedBytes != MemoryRequirement(40) {
		t.Fatalf("uncompressed estimate %v, want %v", est.UncompressedBytes, MemoryRequirement(40))
	}

	// A measuring circuit is not MPS-runnable and must route compressed.
	meas := circuit.New(8).H(0).CNOT(0, 1).Measure(0)
	est, err = EstimateCircuit(8, meas)
	if err != nil {
		t.Fatal(err)
	}
	if est.MPSRunnable || est.Backend != BackendCompressed {
		t.Fatalf("measuring circuit: MPSRunnable=%v backend=%q, want compressed route", est.MPSRunnable, est.Backend)
	}

	// Deep brickwork exceeds a tight χ cap and routes compressed (the
	// 12-qubit Hilbert ceiling caps the estimate at 2^6 = 64, so the
	// cap must sit below that to exercise the rejection).
	deep := circuit.Brickwork(12, 40, 5)
	est, err = EstimateCircuit(12, deep, WithBondDim(8))
	if err != nil {
		t.Fatal(err)
	}
	if est.Backend != BackendCompressed {
		t.Fatalf("deep brickwork at χ=8 should route compressed, got %q", est.Backend)
	}
	// ... but a raised χ cap flips it back.
	est, err = EstimateCircuit(12, deep, WithBondDim(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if est.Backend != BackendMPS {
		t.Fatalf("deep brickwork with huge χ should route mps, got %q", est.Backend)
	}
}

// TestEstimateAgreesWithAuto: the estimate's routing decision must
// match what a WithBackend("auto") simulator actually picks — the
// admission controller and the engine must not disagree.
func TestEstimateAgreesWithAuto(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    *circuit.Circuit
		n    int
	}{
		{"ghz", circuit.GHZ(10), 10},
		{"qft", circuit.QFT(10, 1), 10},
		{"brickwork-shallow", circuit.Brickwork(10, 2, 3), 10},
		{"brickwork-deep", circuit.Brickwork(10, 30, 3), 10},
	} {
		est, err := EstimateCircuit(tc.n, tc.c)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sim, err := New(tc.n, WithBackend(BackendAuto))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, err := sim.Run(context.Background(), tc.c); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := sim.Backend(); got != est.Backend {
			t.Errorf("%s: estimate routes %q but auto picked %q", tc.name, est.Backend, got)
		}
		sim.Close()
	}
}

func TestEstimateCircuitValidation(t *testing.T) {
	if _, err := EstimateCircuit(4, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil circuit: %v, want ErrBadConfig", err)
	}
	if _, err := EstimateCircuit(5, circuit.GHZ(4)); !errors.Is(err, ErrCircuitMismatch) {
		t.Fatalf("width mismatch: %v, want ErrCircuitMismatch", err)
	}
	if _, err := EstimateCircuit(99, circuit.GHZ(99)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("99 qubits: %v, want ErrBadConfig", err)
	}
	if _, err := EstimateCircuit(4, circuit.GHZ(4), WithCodec("nope")); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("bad codec: %v, want ErrUnknownCodec", err)
	}
	// Noise forces the compressed route even on an MPS-friendly circuit.
	est, err := EstimateCircuit(4, circuit.GHZ(4), WithNoise(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if est.MPSRunnable || est.Backend != BackendCompressed {
		t.Fatalf("noisy estimate should route compressed, got %+v", est)
	}
}
