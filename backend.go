package qcsim

import (
	"errors"
	"fmt"
	"io"

	"qcsim/circuit"
	"qcsim/internal/core"
	"qcsim/internal/quantum"
)

// Backend names accepted by WithBackend. The facade's engine contract
// (the `backend` interface below) has two first-class implementations:
// the paper's compressed full-state engine and the §2.2 tensor-network
// (MPS) comparator, plus an "auto" mode that picks per circuit.
const (
	// BackendCompressed is the compressed full-state engine (default):
	// every operation supported, memory 2^(n+4) bytes before
	// compression, graceful lossy degradation under a budget.
	BackendCompressed = "compressed"
	// BackendMPS is the matrix-product-state engine: polynomial memory
	// for low-entanglement circuits at any width, but measurement
	// collapse, multi-controlled gates, assertions, and checkpointing
	// report ErrUnsupportedOp.
	BackendMPS = "mps"
	// BackendAuto defers the choice to the first Run: MPS when the
	// circuit's planned two-qubit-gate structure keeps the estimated
	// bond dimension within WithBondDim's budget (and every gate is
	// MPS-runnable), the compressed engine otherwise.
	BackendAuto = "auto"
)

// backend is the engine contract the Simulator facade drives — the
// previously implicit method set of the compressed core, made explicit
// so engines are pluggable. Both implementations must agree on
// semantics: state persists across RunControlled calls, inspection
// never mutates, errors wrap the package sentinels, and RunControlled
// honors core.RunControl's abort/progress hooks at gate boundaries.
type backend interface {
	// Identity and geometry.
	Name() string
	Qubits() int

	// Execution. RunControlled applies every gate of c in order,
	// checking ctl.PollAbort at gate boundaries (a non-nil return stops
	// execution and is wrapped in the returned error) and invoking
	// ctl.OnGate after each completed gate.
	RunControlled(c *circuit.Circuit, ctl core.RunControl) error
	Reset() error
	SetBasisState(idx uint64) error

	// Cumulative accounting.
	GatesRun() int
	Measurements() []int
	MeasurementCount() int
	FidelityLowerBound() float64
	CompressedFootprint() int64
	CompressionRatio() float64
	BytesMoved() int64
	OverBudget() bool
	Stats() Stats

	// State inspection (never mutates).
	Amplitude(idx uint64) (complex128, error)
	FullState() ([]complex128, error)
	Norm() (float64, error)
	ProbabilityOne(q int) (float64, error)
	ExpectationZ(q int) (float64, error)
	ExpectationZZ(a, b int) (float64, error)
	MaxCutEnergy(edges []core.CutEdge) (float64, error)

	// Statistical assertions (ErrUnsupportedOp on backends without
	// full-state access to joint distributions).
	AssertClassical(q, value int, tol float64) error
	AssertSuperposition(q int, tol float64) error
	AssertProduct(a, b int, tol float64) error

	// Shot-based readout: probability tables built once, draws from the
	// backend's seeded sampling stream.
	NewSampler(cacheLines int) (backendSampler, error)

	// Checkpointing (ErrUnsupportedOp where not implemented).
	Save(w io.Writer) error
	Load(r io.Reader) error

	// Close releases engine resources (the compressed backend's spill
	// files when WithSpill is active; a no-op everywhere else).
	Close() error
}

// backendSampler is the readout handle contract behind the public
// Sampler type.
type backendSampler interface {
	Sample(shots int) ([]uint64, error)
	TotalMass() float64
}

// compressedBackend adapts *core.Simulator to the backend interface.
// Everything is a direct delegation except NewSampler, whose concrete
// return type must be lifted to the interface.
type compressedBackend struct {
	*core.Simulator
}

func (b compressedBackend) Name() string { return BackendCompressed }

func (b compressedBackend) NewSampler(cacheLines int) (backendSampler, error) {
	sp, err := b.Simulator.NewSampler(cacheLines)
	if err != nil {
		return nil, err
	}
	return compressedSampler{sp}, nil
}

// compressedSampler draws from the simulator's dedicated seeded
// sampling stream (the nil-rng fallback inside core).
type compressedSampler struct {
	sp *core.Sampler
}

func (s compressedSampler) Sample(shots int) ([]uint64, error) { return s.sp.Sample(nil, shots) }
func (s compressedSampler) TotalMass() float64                 { return s.sp.TotalMass() }

// pendingAuto holds a WithBackend("auto") simulator's construction
// inputs while the backend decision is still open — until the first
// Run supplies a circuit to analyze. Pre-Run inspection runs against a
// provisional MPS (see Simulator.b), and the only pre-Run mutation,
// SetBasisState, is recorded in basis so a rebuild replays it: no gate
// has executed yet, so swapping engines at decision time loses
// nothing.
type pendingAuto struct {
	qubits    int
	cfg       core.Config
	noiseProb float64
	bondDim   int
	basis     uint64
}

// choose picks the backend for the decision circuit: MPS iff the
// circuit is MPS-runnable, noiseless, not the uncompressed baseline,
// and its estimated bond dimension fits the χ budget; compressed
// otherwise.
func (p *pendingAuto) choose(c *circuit.Circuit) string {
	if p.noiseProb > 0 || p.cfg.Uncompressed {
		return BackendCompressed
	}
	if ok, _ := quantum.MPSCompatible(c); !ok {
		return BackendCompressed
	}
	if quantum.EstimateBondDim(c) > p.bondDim {
		return BackendCompressed
	}
	return BackendMPS
}

// build constructs the chosen backend in the recorded basis state.
// Errors wrap ErrBadConfig.
func (p *pendingAuto) build(name string) (backend, error) {
	var be backend
	if name == BackendMPS {
		mb, err := newMPSBackend(p.qubits, p.bondDim, p.cfg.Seed, p.cfg.FuseGates)
		if err != nil {
			return nil, err
		}
		be = mb
	} else {
		eng, err := core.New(p.cfg)
		if err != nil {
			if errors.Is(err, ErrSpill) {
				// A spill-tier I/O failure (unwritable spill dir, disk
				// full during Reset) is not a configuration mistake;
				// keep the ErrSpill identity for errors.Is.
				return nil, err
			}
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		if p.noiseProb > 0 {
			if err := eng.SetNoise(&core.NoiseModel{Prob: p.noiseProb}); err != nil {
				eng.Close()
				return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
			}
		}
		be = compressedBackend{eng}
	}
	if p.basis != 0 {
		if err := be.SetBasisState(p.basis); err != nil {
			return nil, err
		}
	}
	return be, nil
}
