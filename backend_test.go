package qcsim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"qcsim/circuit"
	"qcsim/internal/mps"
)

// TestWithBackendValidation covers the option surface: names, bond-dim
// range, and combinations the mps backend cannot honor.
func TestWithBackendValidation(t *testing.T) {
	if _, err := New(4, WithBackend("tensor-train")); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown backend: %v", err)
	}
	if _, err := New(4, WithBackend(BackendMPS), WithBondDim(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bond dim 1: %v", err)
	}
	if _, err := New(4, WithBackend(BackendMPS), WithNoise(0.1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mps+noise: %v", err)
	}
	if _, err := New(0, WithBackend(BackendMPS)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mps 0 qubits: %v", err)
	}
	if _, err := New(0, WithBackend(BackendAuto)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("auto 0 qubits: %v", err)
	}
	// Auto fails fast on configs the compressed candidate could never
	// use, without allocating its state.
	if _, err := New(44, WithBackend(BackendAuto), WithRanks(3)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("auto bad ranks: %v", err)
	}
	// The explicit mps path validates the (inert) compressed-engine
	// knobs too — a config typo must not pass or fail depending on the
	// backend name it rides in with.
	if _, err := New(10, WithBackend(BackendMPS), WithRanks(3)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mps bad ranks: %v", err)
	}
	for _, name := range []string{"", BackendCompressed, BackendMPS, BackendAuto} {
		if _, err := New(4, WithBackend(name)); err != nil {
			t.Fatalf("backend %q: %v", name, err)
		}
	}
}

// TestBackendReporting pins Backend(): eager backends report
// immediately, auto reports "auto" until its first circuit.
func TestBackendReporting(t *testing.T) {
	ctx := context.Background()
	sim, _ := New(4)
	if got := sim.Backend(); got != BackendCompressed {
		t.Fatalf("default backend %q", got)
	}
	sim, _ = New(4, WithBackend(BackendMPS))
	if got := sim.Backend(); got != BackendMPS {
		t.Fatalf("mps backend %q", got)
	}
	sim, _ = New(4, WithBackend(BackendAuto))
	if got := sim.Backend(); got != BackendAuto {
		t.Fatalf("pending auto backend %q", got)
	}
	if _, err := sim.Run(ctx, circuit.GHZ(4)); err != nil {
		t.Fatal(err)
	}
	if got := sim.Backend(); got != BackendMPS {
		t.Fatalf("auto after GHZ picked %q, want mps", got)
	}
}

// TestAutoSelection exercises the decision table: low-entanglement and
// MPS-compatible circuits pick mps; deep entanglement, measurement,
// multi-control, noise, and the uncompressed baseline pick compressed.
func TestAutoSelection(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		opts []Option
		cir  *circuit.Circuit
		want string
	}{
		{"ghz", nil, circuit.GHZ(10), BackendMPS},
		{"deep-brickwork", []Option{WithBondDim(4)},
			circuit.Brickwork(10, 8, 1), BackendCompressed},
		{"shallow-brickwork", []Option{WithBondDim(4)},
			circuit.Brickwork(10, 2, 1), BackendMPS},
		{"measurement", nil, circuit.New(10).H(0).Measure(0), BackendCompressed},
		{"toffoli", nil, circuit.New(10).Toffoli(0, 1, 2), BackendCompressed},
		{"noise", []Option{WithNoise(0.01)}, circuit.GHZ(10), BackendCompressed},
		{"uncompressed", []Option{WithUncompressed(true)}, circuit.GHZ(10), BackendCompressed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := New(10, append([]Option{WithBackend(BackendAuto), WithSeed(1)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(ctx, tc.cir); err != nil {
				t.Fatal(err)
			}
			if got := sim.Backend(); got != tc.want {
				t.Fatalf("auto picked %q, want %q", got, tc.want)
			}
		})
	}
}

// TestMPSUnsupportedAtFacade is the facade-level regression suite for
// the typed rejection contract: each operation the mps backend cannot
// run reports ErrUnsupportedOp through errors.Is, carrying the
// structured *mps.UnsupportedOpError.
func TestMPSUnsupportedAtFacade(t *testing.T) {
	ctx := context.Background()
	newMPS := func(t *testing.T) *Simulator {
		sim, err := New(4, WithBackend(BackendMPS), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	check := func(t *testing.T, err error, wantOp string) {
		t.Helper()
		if err == nil {
			t.Fatal("expected ErrUnsupportedOp, got nil")
		}
		if !errors.Is(err, ErrUnsupportedOp) {
			t.Fatalf("error %q does not wrap ErrUnsupportedOp", err)
		}
		var ue *mps.UnsupportedOpError
		if !errors.As(err, &ue) {
			t.Fatalf("error %q carries no *mps.UnsupportedOpError", err)
		}
		if ue.Op != wantOp {
			t.Fatalf("op %q, want %q", ue.Op, wantOp)
		}
	}
	t.Run("measure", func(t *testing.T) {
		sim := newMPS(t)
		res, err := sim.Run(ctx, circuit.New(4).H(0).Measure(0))
		check(t, err, "measure")
		if res == nil || res.Gates != 1 {
			t.Fatalf("prefix before the rejected gate should be kept: %+v", res)
		}
	})
	t.Run("multi-control", func(t *testing.T) {
		sim := newMPS(t)
		_, err := sim.Run(ctx, circuit.New(4).Toffoli(0, 1, 2))
		check(t, err, "multi-control")
	})
	t.Run("assert-classical", func(t *testing.T) {
		check(t, newMPS(t).AssertClassical(0, 0, 1e-9), "assert")
	})
	t.Run("assert-superposition", func(t *testing.T) {
		check(t, newMPS(t).AssertSuperposition(0, 1e-9), "assert")
	})
	t.Run("assert-product", func(t *testing.T) {
		check(t, newMPS(t).AssertProduct(0, 1, 1e-9), "assert")
	})
	t.Run("save", func(t *testing.T) {
		check(t, newMPS(t).Save(&bytes.Buffer{}), "checkpoint")
	})
	t.Run("load", func(t *testing.T) {
		err := newMPS(t).Load(bytes.NewReader(nil))
		check(t, err, "checkpoint")
		if errors.Is(err, ErrBadCheckpoint) {
			t.Fatal("unsupported checkpointing must not masquerade as a corrupt checkpoint")
		}
	})
}

// TestMPSStaleSampler pins the staleness contract on the mps backend:
// any mutation (Run, Reset, SetBasisState) invalidates existing
// samplers.
func TestMPSStaleSampler(t *testing.T) {
	ctx := context.Background()
	sim, err := New(6, WithBackend(BackendMPS), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(ctx, circuit.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	sp, err := sim.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Sample(8); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(ctx, circuit.New(6).X(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Sample(8); !errors.Is(err, ErrStaleSampler) {
		t.Fatalf("after Run: %v", err)
	}
	sp2, _ := sim.Sampler()
	if err := sim.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := sp2.Sample(8); !errors.Is(err, ErrStaleSampler) {
		t.Fatalf("after Reset: %v", err)
	}
	sp3, _ := sim.Sampler()
	if err := sim.SetBasisState(3); err != nil {
		t.Fatal(err)
	}
	if _, err := sp3.Sample(8); !errors.Is(err, ErrStaleSampler) {
		t.Fatalf("after SetBasisState: %v", err)
	}
}

// TestMPSCancellation: the mps backend honors the same gate-boundary
// cancellation contract as the compressed engine.
func TestMPSCancellation(t *testing.T) {
	sim, err := New(8, WithBackend(BackendMPS), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	stopAfter := 5
	seen := 0
	res, err := sim.RunProgress(ctx, circuit.GHZ(8), func(ev ProgressEvent) {
		seen++
		if seen == stopAfter {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Gates != stopAfter {
		t.Fatalf("completed prefix %d, want %d", res.Gates, stopAfter)
	}
	if sim.GatesRun() != stopAfter {
		t.Fatalf("GatesRun %d after cancellation", sim.GatesRun())
	}
}

// TestMPSWideRegister is the acceptance scenario: a 40-qubit GHZ on the
// mps backend runs in milliseconds inside kilobytes, samples its exact
// two-outcome support, and answers amplitude and correlator queries —
// all structurally impossible for a 16 TB dense state.
func TestMPSWideRegister(t *testing.T) {
	sim, err := New(40, WithBackend(BackendMPS), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), circuit.GHZ(40))
	if err != nil {
		t.Fatal(err)
	}
	if res.FidelityLowerBound != 1 {
		t.Fatalf("GHZ should not truncate: ledger %v", res.FidelityLowerBound)
	}
	if res.Footprint > 1<<20 {
		t.Fatalf("footprint %d bytes, want well under 1 MB", res.Footprint)
	}
	shots, err := sim.Sample(1024)
	if err != nil {
		t.Fatal(err)
	}
	all := uint64(1)<<40 - 1
	zeros, ones := 0, 0
	for _, x := range shots {
		switch x {
		case 0:
			zeros++
		case all:
			ones++
		default:
			t.Fatalf("draw %b outside the GHZ support", x)
		}
	}
	if zeros == 0 || ones == 0 {
		t.Fatalf("degenerate split %d/%d", zeros, ones)
	}
	a, err := sim.Amplitude(all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cAbs(a)-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("⟨1...1|ψ⟩ = %v", a)
	}
	zz, err := sim.ExpectationZZ(0, 39)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zz-1) > 1e-12 {
		t.Fatalf("⟨Z_0 Z_39⟩ = %v", zz)
	}
	if _, err := sim.FullState(); !errors.Is(err, ErrStateTooLarge) {
		t.Fatalf("FullState at 40 qubits: %v", err)
	}
}

// TestAutoInspectionBeforeRun: inspecting a pending auto simulator is
// answered through a provisional engine (no full-state allocation even
// at 40 qubits) WITHOUT closing the backend decision — the first Run
// still chooses from its circuit.
func TestAutoInspectionBeforeRun(t *testing.T) {
	ctx := context.Background()
	sim, err := New(40, WithBackend(BackendAuto), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Amplitude(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 {
		t.Fatalf("⟨0|0⟩ = %v", a)
	}
	if got := sim.Backend(); got != BackendAuto {
		t.Fatalf("inspection closed the auto decision early: %q", got)
	}

	// Regression (code review): a pre-Run inspection must not latch
	// the engine — a measurement circuit after Snapshot() still picks
	// the compressed backend and runs.
	sim2, err := New(10, WithBackend(BackendAuto), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	_ = sim2.Snapshot()
	res, err := sim2.Run(ctx, circuit.New(10).H(0).Measure(0))
	if err != nil {
		t.Fatalf("measurement circuit after pre-run inspection: %v", err)
	}
	if sim2.Backend() != BackendCompressed || len(res.Measurements) != 1 {
		t.Fatalf("backend %q, measurements %v", sim2.Backend(), res.Measurements)
	}

	// A basis state set before the decision survives the engine swap.
	sim3, err := New(6, WithBackend(BackendAuto), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim3.SetBasisState(5); err != nil {
		t.Fatal(err)
	}
	if _, err := sim3.Run(ctx, circuit.New(6).Measure(0)); err != nil {
		t.Fatal(err)
	}
	if sim3.Backend() != BackendCompressed {
		t.Fatalf("backend %q", sim3.Backend())
	}
	if ms := sim3.Measurements(); len(ms) != 1 || ms[0] != 1 {
		t.Fatalf("measuring bit 0 of |000101⟩ gave %v, want [1]", ms)
	}

	// An empty circuit is no evidence: it must not close the decision.
	sim5, err := New(10, WithBackend(BackendAuto), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim5.Run(ctx, circuit.New(10)); err != nil {
		t.Fatal(err)
	}
	if got := sim5.Backend(); got != BackendAuto {
		t.Fatalf("zero-gate run closed the auto decision: %q", got)
	}
	if _, err := sim5.Run(ctx, circuit.New(10).H(0).Measure(0)); err != nil {
		t.Fatalf("measurement circuit after an empty run: %v", err)
	}
	if got := sim5.Backend(); got != BackendCompressed {
		t.Fatalf("backend %q", got)
	}

	// Samplers built on the provisional engine go stale when the
	// decision replaces it.
	sim4, err := New(6, WithBackend(BackendAuto), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sim4.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim4.Run(ctx, circuit.New(6).H(0).Measure(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Sample(4); !errors.Is(err, ErrStaleSampler) {
		t.Fatalf("provisional-engine sampler after rebuild: %v", err)
	}
}

// TestAutoCompressedOnlyOpsResolve: operations only the compressed
// engine supports, invoked while the auto decision is open, close the
// decision in its favor instead of failing on the provisional MPS —
// regression for `qcsim -backend auto -resume state.ckp`, which loads
// a checkpoint before any Run.
func TestAutoCompressedOnlyOpsResolve(t *testing.T) {
	ctx := context.Background()
	saver, err := New(6, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := saver.Run(ctx, circuit.GHZ(6)); err != nil {
		t.Fatal(err)
	}
	var ckp bytes.Buffer
	if err := saver.Save(&ckp); err != nil {
		t.Fatal(err)
	}

	sim, err := New(6, WithBackend(BackendAuto), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.Snapshot() // provisional inspection must not block the load
	if err := sim.Load(bytes.NewReader(ckp.Bytes())); err != nil {
		t.Fatalf("auto -resume workflow: %v", err)
	}
	if got := sim.Backend(); got != BackendCompressed {
		t.Fatalf("load resolved auto to %q", got)
	}
	a, err := sim.Amplitude(1<<6 - 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cAbs(a)-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("restored GHZ amplitude %v", a)
	}

	sim2, err := New(6, WithBackend(BackendAuto), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim2.AssertClassical(0, 0, 1e-9); err != nil {
		t.Fatalf("assertion on an undecided auto simulator: %v", err)
	}
	if got := sim2.Backend(); got != BackendCompressed {
		t.Fatalf("assert resolved auto to %q", got)
	}
}

// TestMPSRegisterCap: the uint64 outcome/index API caps every backend
// at 62 qubits; the mps path must enforce it itself (regression for a
// silent bit-drop past 64 qubits).
func TestMPSRegisterCap(t *testing.T) {
	if _, err := New(63, WithBackend(BackendMPS)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("63 qubits: %v", err)
	}
	if _, err := New(100, WithBackend(BackendMPS)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("100 qubits: %v", err)
	}
	if _, err := New(62, WithBackend(BackendMPS)); err != nil {
		t.Fatalf("62 qubits should construct: %v", err)
	}
}

// TestMPSLedgerUnderTruncation: a circuit past the bond budget degrades
// with a ledger drop (like the compressed engine's lossy escalation),
// not an error.
func TestMPSLedgerUnderTruncation(t *testing.T) {
	sim, err := New(10, WithBackend(BackendMPS), WithBondDim(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), circuit.Brickwork(10, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.FidelityLowerBound >= 1 || res.FidelityLowerBound <= 0 {
		t.Fatalf("ledger %v, want in (0,1)", res.FidelityLowerBound)
	}
	if res.Stats.Escalations == 0 {
		t.Fatal("truncating SVDs should surface in Stats.Escalations")
	}
}
