module qcsim

go 1.22
