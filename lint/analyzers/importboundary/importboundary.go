// Package importboundary enforces the repo's layering contract as a
// table-driven rule set, replacing the three import greps that used to
// live in ci.yml. Unlike the greps it resolves real import specs — so
// aliased, renamed, and blank imports are caught, comments cannot
// false-positive, and test files (in-package and external) are
// covered.
package importboundary

import (
	"go/token"
	"strconv"

	"qcsim/lint/internal/analysis"
)

// rule denies a set of import-path prefixes to packages under a set of
// package-path prefixes, with exact-package exemptions.
type rule struct {
	name   string
	scopes []string            // package-path prefixes the rule governs
	deny   []string            // import-path prefixes denied in scope
	exempt map[string][]string // package path -> importable prefixes despite deny
	why    string
}

// rules is the layering table. Scope and deny matching is by path
// segment, and a package's external test package ("..._test") inherits
// its rules.
var rules = []rule{
	{
		name:   "facade-only",
		scopes: []string{"qcsim/examples", "qcsim/cmd"},
		deny:   []string{"qcsim/internal"},
		exempt: map[string][]string{
			// The one documented exemption: cmd/qcserve is the CLI
			// shell of the serving subsystem.
			"qcsim/cmd/qcserve": {"qcsim/internal/server"},
		},
		why: "examples/ and cmd/ ride the public facade (qcsim, qcsim/circuit, qcsim/bench)",
	},
	{
		name:   "serving-on-facade",
		scopes: []string{"qcsim/internal/server", "qcsim/cmd/qcserve"},
		deny: []string{
			"qcsim/internal/core", "qcsim/internal/quantum", "qcsim/internal/mps",
			"qcsim/internal/blockstore", "qcsim/internal/compress", "qcsim/internal/mpi",
			"qcsim/internal/harness", "qcsim/internal/stats", "qcsim/internal/bitio",
			"qcsim/internal/huffman", "qcsim/internal/distrib",
		},
		why: "the serving subsystem admits through qcsim.EstimateCircuit, never the engine internals",
	},
	{
		name:   "public-pkg-no-core",
		scopes: []string{"qcsim/circuit", "qcsim/bench"},
		deny:   []string{"qcsim/internal/core"},
		why:    "circuit and bench go through internal/quantum and internal/harness; only the root facade touches the engine core",
	},
	{
		// The scope prefix covers the contract package AND every
		// transport under it (internal/mpi/tcpnet, ...).
		name:   "transport-is-a-leaf",
		scopes: []string{"qcsim/internal/mpi"},
		deny: []string{
			"qcsim/internal/core", "qcsim/internal/quantum", "qcsim/internal/mps",
			"qcsim/internal/blockstore", "qcsim/internal/compress",
			"qcsim/internal/distrib", "qcsim/internal/server", "qcsim/internal/harness",
		},
		why: "a transport moves words between ranks; it must never see gates, states, codecs, or orchestration",
	},
	{
		name:   "distrib-below-serving",
		scopes: []string{"qcsim/internal/distrib"},
		deny: []string{
			"qcsim/internal/server", "qcsim/internal/harness", "qcsim/internal/mps",
		},
		why: "distrib orchestrates engine ranks over a transport; serving, benchmarking, and the MPS engine sit above or beside it",
	},
}

var Analyzer = &analysis.Analyzer{
	Name: "importboundary",
	Doc: "enforce the package layering table: examples/ and cmd/ stay on the public facade " +
		"(cmd/qcserve may use internal/server), the serving subsystem never reaches engine " +
		"internals, the public circuit/ and bench/ packages never import internal/core, " +
		"transports under internal/mpi stay leaf packages that never see the engine, and " +
		"internal/distrib never reaches up into serving or sideways into MPS",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pkg := analysis.BasePkgPath(pass.PkgPath)
	reported := make(map[token.Pos]bool)
	for _, r := range rules {
		if !inScope(pkg, r.scopes) {
			continue
		}
		for _, f := range pass.Files {
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if !denied(path, r.deny) || exempted(pkg, path, r.exempt) {
					continue
				}
				if reported[spec.Pos()] {
					continue
				}
				reported[spec.Pos()] = true
				pass.Reportf(spec.Pos(), "forbidden import %q in %s: %s (rule %s)",
					path, pkg, r.why, r.name)
			}
		}
	}
	return nil
}

func inScope(pkg string, scopes []string) bool {
	for _, s := range scopes {
		if analysis.HasPathPrefix(pkg, s) {
			return true
		}
	}
	return false
}

func denied(imp string, deny []string) bool {
	for _, d := range deny {
		if analysis.HasPathPrefix(imp, d) {
			return true
		}
	}
	return false
}

func exempted(pkg, imp string, exempt map[string][]string) bool {
	for _, ok := range exempt[pkg] {
		if analysis.HasPathPrefix(imp, ok) {
			return true
		}
	}
	return false
}
