package importboundary_test

import (
	"testing"

	"qcsim/lint/analyzers/importboundary"
	"qcsim/lint/internal/analysistest"
)

func TestImportBoundary(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), importboundary.Analyzer,
		"qcsim/circuit",
		"qcsim/bench",
		"qcsim/examples/demo",
		"qcsim/cmd/qcserve",
		"qcsim/cmd/other",
		"qcsim/internal/server",
		"qcsim/internal/mpi/tcpnet",
		"qcsim/internal/distrib",
	)
}
