// Package circuit must stay off the engine core.
package circuit

import "qcsim/internal/core" // want "rule public-pkg-no-core"

func Build() { core.Step() }
