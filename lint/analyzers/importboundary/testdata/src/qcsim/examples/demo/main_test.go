// In-package test files are covered too — the old grep only scanned
// non-test sources.
package main

import (
	"testing"

	"qcsim/internal/quantum" // want "rule facade-only"
)

func TestDemo(t *testing.T) { quantum.Gate() }
