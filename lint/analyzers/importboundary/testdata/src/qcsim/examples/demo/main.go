// Fixture: examples ride the facade; an aliased engine import is
// still resolved and denied.
package main

import (
	"qcsim"

	engine "qcsim/internal/core" // want "rule facade-only"
)

func main() {
	_ = qcsim.Version()
	engine.Step()
}
