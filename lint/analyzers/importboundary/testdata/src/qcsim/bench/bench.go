// Package bench may use internal/quantum; only internal/core is
// denied to it.
package bench

import "qcsim/internal/quantum"

func Run() { quantum.Gate() }
