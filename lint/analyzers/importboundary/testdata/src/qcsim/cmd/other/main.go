// A blank import is still an import: the linkage (init side effects)
// crosses the boundary even if no name does.
package main

import (
	_ "qcsim/internal/mpi" // want "rule facade-only"
)

func main() {}
