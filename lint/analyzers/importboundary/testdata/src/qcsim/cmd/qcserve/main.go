// Fixture for the one documented exemption: cmd/qcserve may import
// internal/server, but still not the engine core.
package main

import (
	"qcsim/internal/core" // want "forbidden import \"qcsim/internal/core\""
	"qcsim/internal/server"
)

func main() {
	_ = server.Serve()
	core.Step()
}
