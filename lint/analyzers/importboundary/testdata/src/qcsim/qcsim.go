// Package qcsim is the facade stub for importboundary fixtures.
package qcsim

func Version() string { return "fixture" }
