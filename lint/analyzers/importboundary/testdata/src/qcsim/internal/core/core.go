package core

func Step() {}
