// Fixture: a transport implementation may use its contract package,
// but it is a leaf — the engine core is out of reach.
package tcpnet

import (
	"qcsim/internal/core" // want "rule transport-is-a-leaf"
	"qcsim/internal/mpi"
)

func Mesh() {
	core.Step()
	_ = mpi.Version
}
