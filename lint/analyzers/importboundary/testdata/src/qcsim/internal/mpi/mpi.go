package mpi

var Version = 1

func init() {}
