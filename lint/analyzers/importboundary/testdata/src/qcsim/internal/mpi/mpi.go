package mpi

func init() {}
