// Package server stubs the serving subsystem. Importing the facade is
// fine; reaching engine internals is not.
package server

import "qcsim"

func Serve() string { return qcsim.Version() }
