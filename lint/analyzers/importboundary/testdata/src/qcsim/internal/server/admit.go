package server

import (
	"qcsim/internal/core"    // want "rule serving-on-facade"
	"qcsim/internal/distrib" // want "rule serving-on-facade"
)

func admit() {
	core.Step()
	distrib.Run()
}
