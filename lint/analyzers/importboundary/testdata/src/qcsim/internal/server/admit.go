package server

import "qcsim/internal/core" // want "rule serving-on-facade"

func admit() { core.Step() }
