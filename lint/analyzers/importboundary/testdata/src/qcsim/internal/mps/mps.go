package mps

func Contract() {}
