// Fixture: distrib legitimately drives the engine core and the
// transport, but serving and the MPS engine sit above or beside it.
package distrib

import (
	"qcsim/internal/core"
	"qcsim/internal/mpi"
	"qcsim/internal/mps" // want "rule distrib-below-serving"
)

func Run() {
	core.Step()
	mps.Contract()
	_ = mpi.Version
}
