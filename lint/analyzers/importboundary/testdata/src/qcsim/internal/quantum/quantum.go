package quantum

func Gate() {}
