// Binaries own their root contexts.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
