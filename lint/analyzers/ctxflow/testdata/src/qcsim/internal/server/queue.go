// The documented exemption: a queued job carries the submit context so
// cancellation follows the tenant request across the suspend/resume
// boundary. The directive must carry its reason.
package server

import "context"

type job struct {
	//qclint:allow ctxflow queued jobs carry the submit context across suspend/resume by design
	ctx context.Context
	id  int
}

func enqueue(ctx context.Context, id int) job { return job{ctx: ctx, id: id} }
