// Library fixture: every context-discipline violation.
package demo

import "context"

// Run has ctx first: fine.
func Run(ctx context.Context, n int) error { return nil }

func badOrder(n int, ctx context.Context) error { return nil } // want "first parameter"

type job struct {
	ctx context.Context // want "stored in a struct"
	id  int
}

func mint() context.Context {
	return context.Background() // want "library code"
}

func todo() context.Context {
	return context.TODO() // want "library code"
}

func litBad() {
	f := func(n int, ctx context.Context) {} // want "first parameter"
	f(0, nil)
}
