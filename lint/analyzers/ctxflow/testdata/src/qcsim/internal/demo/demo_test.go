// Tests mint root contexts freely.
package demo

import (
	"context"
	"testing"
)

func TestRun(t *testing.T) { _ = Run(context.Background(), 1) }
