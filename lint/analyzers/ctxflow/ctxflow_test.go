package ctxflow_test

import (
	"testing"

	"qcsim/lint/analyzers/ctxflow"
	"qcsim/lint/internal/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer,
		"qcsim/internal/demo",
		"qcsim/internal/server",
		"qcsim/cmd/tool",
	)
}
