// Package ctxflow enforces the repo's context discipline:
//
//  1. a context.Context parameter must be the first parameter
//     (functions and function literals alike),
//  2. context.Context must not be stored in a struct field — contexts
//     flow through call stacks, not object lifetimes (the server's
//     queued-job struct is the one documented exemption, carried by a
//     //qclint:allow directive at the field), and
//  3. library code must not mint its own root context with
//     context.Background() or context.TODO(); only the binaries under
//     cmd/ and the runnable examples/ own roots. The facade's
//     "nil ctx means Background" convenience defaults are documented
//     exemptions via //qclint:allow.
//
// Test files are skipped: tests legitimately create root contexts.
package ctxflow

import (
	"go/ast"
	"go/types"

	"qcsim/lint/internal/analysis"
)

// rootOwners are package-path prefixes allowed to call
// context.Background/TODO: process entry points own their roots.
var rootOwners = []string{"qcsim/cmd", "qcsim/examples"}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "context.Context is always the first parameter, never a struct field, and never " +
		"minted via context.Background/TODO in library code (only cmd/ and examples/ own roots)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	rootOwner := false
	for _, p := range rootOwners {
		if analysis.HasPathPrefix(analysis.BasePkgPath(pass.PkgPath), p) {
			rootOwner = true
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkParams(pass, n.Type)
			case *ast.FuncLit:
				checkParams(pass, n.Type)
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if len(field.Names) == 0 {
						continue // embedding context.Context would not type-check as a field store
					}
					if isContext(pass.TypesInfo.Types[field.Type].Type) {
						pass.Reportf(field.Pos(),
							"context.Context stored in a struct field; contexts flow through parameters, not object lifetimes")
					}
				}
			case *ast.CallExpr:
				if rootOwner {
					return true
				}
				if pkg, name := pkgFunc(pass, n); pkg == "context" && (name == "Background" || name == "TODO") {
					pass.Reportf(n.Pos(),
						"context.%s in library code; accept a caller context instead — only cmd/ and examples/ mint root contexts", name)
				}
			}
			return true
		})
	}
	return nil
}

// checkParams flags a context.Context parameter that is not in the
// first (flattened) position.
func checkParams(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // flattened parameter position
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContext(pass.TypesInfo.Types[field.Type].Type) && pos != 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter")
		}
		pos += n
	}
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pkgFunc resolves a call to its package path and function name, for
// package-level functions only.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkg, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}
