// Package allowdirective audits the //qclint:allow exemption budget.
// A directive must name a real analyzer and carry a reason:
//
//	//qclint:allow ctxflow queued jobs carry the submit ctx by design
//
// A bare directive (no analyzer, or no reason) suppresses nothing —
// the suppression machinery ignores it — and is itself flagged here so
// it cannot linger looking like an exemption. Unknown analyzer names
// are flagged too, catching typos that would otherwise silently fail
// to suppress.
package allowdirective

import (
	"qcsim/lint/internal/analysis"
)

// New builds the auditor for a known set of analyzer names.
func New(known []string) *analysis.Analyzer {
	names := make(map[string]bool, len(known))
	for _, n := range known {
		names[n] = true
	}
	return &analysis.Analyzer{
		Name: "allowdirective",
		Doc: "every //qclint:allow directive names a real analyzer and carries a reason; " +
			"bare or misspelled directives suppress nothing and are flagged",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range analysis.AllowDirectives(f) {
					switch {
					case d.Analyzer == "" || (d.Reason == "" && !names[d.Analyzer]):
						pass.Reportf(d.Pos,
							"bare %s directive; usage: %s <analyzer> <reason>",
							analysis.AllowMarker, analysis.AllowMarker)
					case !names[d.Analyzer]:
						pass.Reportf(d.Pos,
							"unknown analyzer %q in %s directive", d.Analyzer, analysis.AllowMarker)
					case d.Reason == "":
						pass.Reportf(d.Pos,
							"%s %s directive without a reason; exemptions must say why",
							analysis.AllowMarker, d.Analyzer)
					}
				}
			}
			return nil
		},
	}
}
