// Fixture: the exemption-budget auditor. Only the last directive is a
// usable exemption; the rest suppress nothing and are flagged.
package demo

//qclint:allow // want "bare"
func a() {}

//qclint:allow ctxflow // want "without a reason"
func b() {}

//qclint:allow nosuch some reason // want "unknown analyzer"
func c() {}

//qclint:allow ctxflow jobs carry the submit context by design
func d() {}
