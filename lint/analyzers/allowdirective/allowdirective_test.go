package allowdirective_test

import (
	"testing"

	"qcsim/lint/analyzers/allowdirective"
	"qcsim/lint/analyzers/registry"
	"qcsim/lint/internal/analysistest"
)

func TestAllowDirective(t *testing.T) {
	// Build the auditor with the real suite's names so the fixture's
	// "ctxflow" directive resolves and "nosuch" does not.
	var names []string
	for _, a := range registry.All() {
		if a.Name != "allowdirective" {
			names = append(names, a.Name)
		}
	}
	analysistest.Run(t, analysistest.TestData(), allowdirective.New(names),
		"qcsim/internal/demo",
	)
}
