// Package detrand protects bit-identical reproducibility in the
// engine packages. Every random draw in the engine must come from a
// *rand.Rand derived from Config.Seed; the process-global math/rand
// source (or a source seeded from the wall clock) makes runs
// non-reproducible, which breaks checkpoint round-trips, the variant
// batch lockstep contract, and the bench regression gate.
//
// Two rules, both scoped to the engine prefixes and skipping _test
// files (tests may use throwaway randomness):
//
//  1. no calls to the global top-level draw/seed functions of
//     math/rand or math/rand/v2 (rand.Intn, rand.Float64, rand.Seed,
//     rand.N, ...), and
//  2. no time.Now flowing into a rand source: as an argument (however
//     nested) of rand.New/rand.NewSource/rand.NewPCG/rand.NewChaCha8,
//     or assigned to a variable whose name contains "seed".
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"qcsim/lint/internal/analysis"
)

// enginePkgs are the package prefixes where determinism is
// load-bearing.
var enginePkgs = []string{
	"qcsim/internal/core",
	"qcsim/internal/quantum",
	"qcsim/internal/mps",
	"qcsim/internal/blockstore",
	"qcsim/internal/compress",
}

// globalDraw lists the top-level math/rand (v1 and v2) functions that
// read or mutate the shared process-global source.
var globalDraw = map[string]bool{
	// v1 and v2
	"Int": true, "Int32": true, "Int64": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true,
	// v1 only
	"Seed": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint": true, "Read": true,
	// v2 only
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true, "UintptrN": true, "Uintptr": true,
}

// sourceCtor lists the constructors whose arguments become a random
// source's seed material.
var sourceCtor = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "engine packages (internal/{core,quantum,mps,blockstore,compress}) must draw randomness " +
		"only from a Config.Seed-derived *rand.Rand: no global math/rand calls, no seeding from time.Now",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inEngine(analysis.BasePkgPath(pass.PkgPath)) {
		return nil
	}
	// rand.New(rand.NewSource(time.Now()...)) nests one constructor in
	// another; dedupe so the inner time.Now is reported once.
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, name := pkgFunc(pass, n)
				switch {
				case isRandPkg(pkg) && globalDraw[name]:
					pass.Reportf(n.Pos(),
						"global %s.%s draws from the shared process source, which breaks bit-identity; use a Config.Seed-derived *rand.Rand",
						pkgBase(pkg), name)
				case isRandPkg(pkg) && sourceCtor[name]:
					for _, arg := range n.Args {
						reportTimeNow(pass, reported, arg)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) || !seedName(n.Lhs[i]) {
						continue
					}
					reportTimeNow(pass, reported, rhs)
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i >= len(n.Names) || !strings.Contains(strings.ToLower(n.Names[i].Name), "seed") {
						continue
					}
					reportTimeNow(pass, reported, v)
				}
			}
			return true
		})
	}
	return nil
}

// reportTimeNow reports every time.Now call nested anywhere in e,
// once per call site.
func reportTimeNow(pass *analysis.Pass, reported map[token.Pos]bool, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := pkgFunc(pass, call); pkg == "time" && name == "Now" && !reported[call.Pos()] {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(),
				"seeding from time.Now breaks run-to-run determinism; derive seeds from Config.Seed")
		}
		return true
	})
}

// pkgFunc resolves a call to its package path and function name, for
// package-level functions only.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkg, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}

func seedName(lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(lhs.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(lhs.Sel.Name), "seed")
	}
	return false
}

func inEngine(pkg string) bool {
	for _, p := range enginePkgs {
		if analysis.HasPathPrefix(pkg, p) {
			return true
		}
	}
	return false
}
