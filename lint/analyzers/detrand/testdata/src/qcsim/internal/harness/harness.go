// Non-engine fixture: internal/harness is outside the determinism
// boundary (it times wall-clock runs), so global rand is allowed.
package harness

import "math/rand"

func Jitter(n int) int { return rand.Intn(n) }
