// Tests may use throwaway randomness.
package quantum

import (
	"math/rand"
	"testing"
)

func TestThrowaway(t *testing.T) { _ = rand.Intn(3) }
