// Engine fixture: every banned randomness shape, plus the blessed
// Config.Seed path.
package quantum

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

type Config struct{ Seed int64 }

func pick(n int) int {
	return rand.Intn(n) // want "breaks bit-identity"
}

func pickV2(n int) int {
	return randv2.IntN(n) // want "breaks bit-identity"
}

func newRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeding from time.Now"
}

func clockSeed() int64 {
	seed := time.Now().UnixNano() // want "seeding from time.Now"
	return seed
}

var bootSeed = time.Now().UnixNano() // want "seeding from time.Now"

// Deriving from Config.Seed is the blessed path.
func fromConfig(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

// Drawing from a derived source is fine — only the global source is
// banned.
func draw(r *rand.Rand, n int) int {
	return r.Intn(n)
}

// Timing with time.Now is fine; only seed flows are flagged.
func timed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

var _ = bootSeed
