package detrand_test

import (
	"testing"

	"qcsim/lint/analyzers/detrand"
	"qcsim/lint/internal/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer,
		"qcsim/internal/quantum",
		"qcsim/internal/harness",
	)
}
