package blockaccess_test

import (
	"testing"

	"qcsim/lint/analyzers/blockaccess"
	"qcsim/lint/internal/analysistest"
)

func TestBlockAccess(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), blockaccess.Analyzer,
		"qcsim/internal/core",
		"qcsim/internal/blockstore",
	)
}
