// Package blockstore is the one package allowed to own a raw block
// table; nothing here is flagged.
package blockstore

type ram struct {
	blocks [][]byte
}

func (r *ram) Get(i int) []byte { return r.blocks[i] }

func (r *ram) Put(i int, b []byte) {
	for len(r.blocks) <= i {
		r.blocks = append(r.blocks, nil)
	}
	r.blocks[i] = b
}
