// Test files are covered on purpose: state pokes in tests go through
// store accessors too.
package core

import "testing"

func TestPoke(t *testing.T) {
	rs := &resumeState{}
	_ = rs.blocks // want "direct access to block table field"
}
