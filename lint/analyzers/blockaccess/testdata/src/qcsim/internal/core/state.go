// Fixture: a reborn block table in the engine core, with every access
// shape the old `\.blocks\[` grep missed.
package core

type table [][]byte

type resumeState struct {
	blocks [][]byte // want "raw block table field"
	n      int
}

type cache struct {
	blocks table // want "raw block table field"
}

type meta struct {
	blocks []int // a slice of ints is not a block table
}

func (rs *resumeState) get(i int) []byte {
	return rs.blocks[i] // want "direct access to block table field"
}

func total(s *resumeState, m *meta) int {
	t := s.blocks // want "direct access to block table field"
	sum := 0
	for _, b := range s.blocks { // want "direct access to block table field"
		sum += len(b)
	}
	sum += len(t) + len(m.blocks)
	return sum
}
