// Package blockaccess enforces the BlockStore seam from PR 6: outside
// internal/blockstore, no package declares or touches a raw block
// table ([][]byte of compressed blobs). The old CI gate grepped for
// `rs\.blocks` / `\.blocks\[`, which missed renamed receivers,
// re-sliced tables, and aliases escaping into locals; this analyzer
// resolves accesses through the type checker instead:
//
//   - declaring a struct field named "blocks" whose underlying type is
//     [][]byte is flagged (a reborn block table), and
//   - any selector that resolves to such a field — indexing, slicing,
//     ranging, passing, or aliasing it — is flagged at the point of
//     access, whatever the receiver is called.
//
// Aliases are caught at creation (`t := rs.blocks` flags the selector),
// so a table can never legally escape to an unflagged local. Test
// files are covered: state pokes in tests go through store accessors
// too.
package blockaccess

import (
	"go/ast"
	"go/types"

	"qcsim/lint/internal/analysis"
)

// storePkg is the only package allowed to own a block table.
const storePkg = "qcsim/internal/blockstore"

var Analyzer = &analysis.Analyzer{
	Name: "blockaccess",
	Doc: "block storage goes through the blockstore.Store interface: no package outside " +
		"internal/blockstore declares a [][]byte field named blocks or indexes/slices/ranges/" +
		"aliases one, resolved through the type checker",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.BasePkgPath(pass.PkgPath) == storePkg {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					for _, name := range field.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj != nil && name.Name == "blocks" && isBlockTable(obj.Type()) {
							pass.Reportf(name.Pos(),
								"raw block table field %q (%s); block storage must go through blockstore.Store",
								name.Name, obj.Type())
						}
					}
				}
			case *ast.SelectorExpr:
				sel := pass.TypesInfo.Selections[n]
				if sel != nil && sel.Kind() == types.FieldVal &&
					sel.Obj().Name() == "blocks" && isBlockTable(sel.Obj().Type()) {
					pass.Reportf(n.Sel.Pos(),
						"direct access to block table field %q outside internal/blockstore; use the Store interface (Get/Put/Peek)",
						n.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isBlockTable reports whether t's underlying type is [][]byte.
func isBlockTable(t types.Type) bool {
	outer, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	inner, ok := outer.Elem().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := inner.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
