// Package errwrap keeps the PR 2 typed-error contract from eroding.
// Two rules:
//
//  1. Everywhere (non-test files): a fmt.Errorf call that formats an
//     error operand with %v/%s and has no %w anywhere discards the
//     error chain — errors.Is can no longer see the cause. The
//     facade's deliberate flatten idiom `fmt.Errorf("%w: %v",
//     ErrSentinel, err)` is allowed: the chain is rooted in the
//     sentinel and the cause is flattened on purpose.
//
//  2. On the exported surface of the public packages (qcsim, circuit,
//     bench): a return of a freshly built rootless error —
//     fmt.Errorf without %w, or an inline errors.New — can never be
//     errors.Is-reachable, violating the documented contract that
//     every public error wraps a qcsim.Err* sentinel. Returning
//     declared sentinels or propagated call results is fine.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"

	"qcsim/lint/internal/analysis"
)

// facadePkgs are the packages whose exported surface carries the
// sentinel contract.
var facadePkgs = map[string]bool{
	"qcsim":         true,
	"qcsim/circuit": true,
	"qcsim/bench":   true,
}

var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf with an error operand must keep the chain (%w somewhere in the format), " +
		"and exported functions of qcsim/circuit/bench must not return rootless errors — " +
		"every public error wraps a typed qcsim.Err* sentinel reachable by errors.Is",
	Run: run,
}

func run(pass *analysis.Pass) error {
	facade := facadePkgs[analysis.BasePkgPath(pass.PkgPath)]
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Rule 1: chain-breaking error operands, anywhere.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeOf(pass, call); fn == "fmt.Errorf" {
				checkErrorfOperands(pass, call)
			}
			return true
		})
		// Rule 2: rootless returns on the exported facade surface.
		if !facade {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkExportedReturns(pass, fd)
		}
	}
	return nil
}

// checkErrorfOperands flags error-typed operands whose verb loses the
// chain when the call wraps nothing at all.
func checkErrorfOperands(pass *analysis.Pass, call *ast.CallExpr) {
	verbs, ok := operandVerbs(pass, call)
	if !ok {
		return
	}
	hasW := false
	for _, v := range verbs {
		if v == 'w' {
			hasW = true
		}
	}
	if hasW {
		return // chain rooted; extra %v operands are the flatten idiom
	}
	for i, v := range verbs {
		argIdx := 1 + i
		if v == 0 || argIdx >= len(call.Args) {
			continue
		}
		t := pass.TypesInfo.Types[call.Args[argIdx]].Type
		if t != nil && implementsError(t) {
			pass.Reportf(call.Args[argIdx].Pos(),
				"error operand formatted with %%%c and no %%w in the call, breaking the error chain; use %%w (or wrap a sentinel)", v)
		}
	}
}

// checkExportedReturns flags returns of freshly built rootless errors
// inside an exported function (nested function literals return from
// themselves, not the surface, and are skipped).
func checkExportedReturns(pass *analysis.Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkReturnedExpr(pass, fd, res)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkReturnedExpr(pass *analysis.Pass, fd *ast.FuncDecl, e ast.Expr) {
	t := pass.TypesInfo.Types[e].Type
	if t == nil || !implementsError(t) {
		return
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	switch calleeOf(pass, call) {
	case "errors.New":
		pass.Reportf(call.Pos(),
			"exported %s returns an inline errors.New error; declare a sentinel (or wrap one with fmt.Errorf and %%w) so callers can errors.Is it",
			fd.Name.Name)
	case "fmt.Errorf":
		verbs, ok := operandVerbs(pass, call)
		if !ok {
			return
		}
		hasErrOperand := false
		for i, v := range verbs {
			if v == 0 || 1+i >= len(call.Args) {
				continue
			}
			if at := pass.TypesInfo.Types[call.Args[1+i]].Type; at != nil {
				if v == 'w' {
					return // chain rooted
				}
				if implementsError(at) {
					hasErrOperand = true
				}
			}
		}
		if hasErrOperand {
			return // rule 1 already reported the chain break
		}
		pass.Reportf(call.Pos(),
			"exported %s returns a rootless fmt.Errorf error; wrap a typed sentinel with %%w so callers can errors.Is it",
			fd.Name.Name)
	}
}

// calleeOf resolves a call to "pkgpath.Func" for package-level
// functions, or "".
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// operandVerbs maps each variadic operand of a fmt.Errorf call to the
// verb that consumes it (0 for operands consumed as width/precision).
// Returns ok=false when the format is not a constant string or the
// call spreads a slice.
func operandVerbs(pass *analysis.Pass, call *ast.CallExpr) ([]rune, bool) {
	if len(call.Args) < 1 || call.Ellipsis.IsValid() {
		return nil, false
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil, false
	}
	format := constant.StringVal(tv.Value)
	verbs := make([]rune, 0, len(call.Args)-1)
	next := 0 // next operand index
	take := func(v rune) {
		for len(verbs) <= next {
			verbs = append(verbs, 0)
		}
		verbs[next] = v
		next++
	}
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// flags
		for i < len(rs) && (rs[i] == '+' || rs[i] == '-' || rs[i] == '#' || rs[i] == ' ' || rs[i] == '0') {
			i++
		}
		// width
		if i < len(rs) && rs[i] == '*' {
			take(0)
			i++
		} else {
			for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(rs) && rs[i] == '.' {
			i++
			if i < len(rs) && rs[i] == '*' {
				take(0)
				i++
			} else {
				for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
					i++
				}
			}
		}
		// explicit argument index
		if i < len(rs) && rs[i] == '[' {
			j := i + 1
			idx := 0
			for j < len(rs) && rs[j] >= '0' && rs[j] <= '9' {
				idx = idx*10 + int(rs[j]-'0')
				j++
			}
			if j >= len(rs) || rs[j] != ']' || idx < 1 {
				return nil, false // malformed; leave to go vet
			}
			next = idx - 1
			i = j + 1
		}
		if i >= len(rs) {
			break
		}
		take(rs[i])
	}
	return verbs, true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface)
}
