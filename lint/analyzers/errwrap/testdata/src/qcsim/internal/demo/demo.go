// Non-facade fixture: the chain-break rule applies repo-wide; the
// rootless-return rule does not.
package demo

import (
	"errors"
	"fmt"
)

var errBase = errors.New("demo: base")

func lose(err error) error {
	return fmt.Errorf("ctx: %v", err) // want "breaking the error chain"
}

func loseString(err error) error {
	return fmt.Errorf("ctx: %s", err) // want "breaking the error chain"
}

func indexed(n int, err error) error {
	return fmt.Errorf("%[2]v after %[1]d", n, err) // want "breaking the error chain"
}

func widthStar(w int, err error) error {
	return fmt.Errorf("%*d: %v", w, 7, err) // want "breaking the error chain"
}

func keep(err error) error {
	return fmt.Errorf("ctx: %w", err)
}

// Rootless returns outside the facade are allowed: internal packages
// build plain errors and the facade maps them to sentinels.
func Rootless(n int) error {
	return fmt.Errorf("n=%d", n)
}

// A non-constant format cannot be parsed; left to go vet.
func dynamic(f string, err error) error {
	return fmt.Errorf(f, err)
}

func use() { _ = errBase }
