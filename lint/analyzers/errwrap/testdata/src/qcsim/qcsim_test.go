// Test files are exempt: tests may flatten errors freely.
package qcsim

import (
	"fmt"
	"testing"
)

func TestFlatten(t *testing.T) {
	err := Decode(nil)
	_ = fmt.Errorf("context: %v", err)
}
