// Facade fixture: exported surface carries the sentinel contract.
package qcsim

import (
	"errors"
	"fmt"
)

var ErrBadConfig = errors.New("qcsim: bad config")

// Open flattens a cause under a sentinel — the documented idiom; the
// chain is rooted by %w, so the %v operand is fine.
func Open(path string) error {
	if err := load(path); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}

// Decode formats its cause with %v and wraps nothing: the chain dies
// here.
func Decode(b []byte) error {
	if err := parse(b); err != nil {
		return fmt.Errorf("decode: %v", err) // want "breaking the error chain"
	}
	return nil
}

// Validate mints a rootless message on the exported surface.
func Validate(n int) error {
	if n < 0 {
		return fmt.Errorf("bad qubit count %d", n) // want "rootless"
	}
	return nil
}

// Close mints an inline errors.New on the exported surface.
func Close() error {
	return errors.New("already closed") // want "inline errors.New"
}

// Wrap roots the chain in a sentinel: fine.
func Wrap(detail string) error {
	return fmt.Errorf("%w: %s", ErrBadConfig, detail)
}

// Sentinel returns a declared sentinel: fine.
func Sentinel() error { return ErrBadConfig }

// helper is unexported: internal construction is the facade's own
// business until it crosses the exported surface.
func helper() error {
	return fmt.Errorf("internal detail %d", 3)
}

func load(string) error  { return nil }
func parse([]byte) error { return nil }
