package errwrap_test

import (
	"testing"

	"qcsim/lint/analyzers/errwrap"
	"qcsim/lint/internal/analysistest"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errwrap.Analyzer,
		"qcsim",
		"qcsim/internal/demo",
	)
}
