// Package registry assembles the qclint analyzer suite. The driver
// and any future vet-tool shim both pull from here so the set cannot
// drift between entry points.
package registry

import (
	"qcsim/lint/analyzers/allowdirective"
	"qcsim/lint/analyzers/blockaccess"
	"qcsim/lint/analyzers/ctxflow"
	"qcsim/lint/analyzers/detrand"
	"qcsim/lint/analyzers/errwrap"
	"qcsim/lint/analyzers/importboundary"
	"qcsim/lint/internal/analysis"
)

// All returns every analyzer in the suite, including the directive
// auditor parameterized with the others' names.
func All() []*analysis.Analyzer {
	core := []*analysis.Analyzer{
		importboundary.Analyzer,
		blockaccess.Analyzer,
		errwrap.Analyzer,
		detrand.Analyzer,
		ctxflow.Analyzer,
	}
	names := make([]string, 0, len(core))
	for _, a := range core {
		names = append(names, a.Name)
	}
	return append(core, allowdirective.New(names))
}
