package registry_test

import (
	"testing"

	"qcsim/lint/analyzers/registry"
)

func TestSuite(t *testing.T) {
	all := registry.All()
	if len(all) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing name, doc, or run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if !seen["allowdirective"] {
		t.Errorf("suite is missing the allowdirective auditor")
	}
}
