// Command qclint runs the repo's architectural-invariant analyzers
// over the root module — the type-aware replacement for the grep gates
// that used to live in ci.yml. Usage:
//
//	go -C lint run ./cmd/qclint -C .. ./...
//
// It loads every package matching the patterns (test files included),
// runs the suite from analyzers/registry, prints findings as
// file:line:col: message (analyzer), and exits 1 if any survive
// //qclint:allow suppression. -list prints the suite and each
// analyzer's contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qcsim/lint/analyzers/registry"
	"qcsim/lint/internal/analysis"
	"qcsim/lint/internal/load"
)

func main() {
	chdir := flag.String("C", "", "run as if started in this directory (the module to lint)")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: qclint [-C dir] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := registry.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		fatalf("resolving -C %q: %v", dir, err)
	}

	pkgs, err := load.LoadModule(abs, patterns)
	if err != nil {
		fatalf("%v", err)
	}

	bad := 0
	for _, pkg := range pkgs {
		target := pkg.Target()
		for _, a := range suite {
			findings, err := analysis.Run(a, target)
			if err != nil {
				fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, f := range findings {
				bad++
				fmt.Printf("%s: %s (%s)\n", shorten(abs, f.Pos.String()), f.Message, f.Analyzer)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "qclint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

// shorten rewrites an absolute finding position relative to the linted
// module root, keeping CI logs readable.
func shorten(root, pos string) string {
	if rel, err := filepath.Rel(root, pos); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return pos
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "qclint: "+format+"\n", args...)
	os.Exit(1)
}
