module qcsim/lint

go 1.22
