package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowMarker is the line-directive prefix that exempts one line from
// one analyzer. The full form is
//
//	//qclint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above. The reason is mandatory: a bare allow suppresses
// nothing and is itself rejected by the allowdirective analyzer, so
// every exemption in the tree stays grep-able with its justification
// attached. A reason must not contain "//" (anything from "//" on is
// treated as a trailing comment, not reason text).
const AllowMarker = "//qclint:allow"

// AllowDirective is one parsed //qclint:allow comment.
type AllowDirective struct {
	Pos      token.Pos // position of the comment
	Analyzer string    // named analyzer, "" if missing
	Reason   string    // justification, "" if missing
}

// AllowDirectives returns every //qclint:allow directive in the file,
// including malformed ones (empty Analyzer or Reason), so callers can
// both apply and police them.
func AllowDirectives(f *ast.File) []AllowDirective {
	var out []AllowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, AllowMarker)
			if !ok {
				continue
			}
			if text != "" && text[0] != ' ' && text[0] != '\t' {
				continue // e.g. //qclint:allowx — not the marker
			}
			// Anything from an embedded "//" on is a trailing
			// comment (this is how fixtures attach // want
			// expectations to a directive line), not reason text.
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			d := AllowDirective{Pos: c.Pos()}
			fields := strings.Fields(text)
			if len(fields) > 0 {
				d.Analyzer = fields[0]
				d.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

type lineKey struct {
	file string
	line int
}

// allowedLines collects the (file, line) pairs suppressed for the
// named analyzer: a well-formed directive covers its own line and the
// line below it.
func allowedLines(fset *token.FileSet, files []*ast.File, analyzer string) map[lineKey]bool {
	allowed := make(map[lineKey]bool)
	for _, f := range files {
		for _, d := range AllowDirectives(f) {
			if d.Analyzer != analyzer || d.Reason == "" {
				continue
			}
			pos := fset.Position(d.Pos)
			allowed[lineKey{pos.Filename, pos.Line}] = true
			allowed[lineKey{pos.Filename, pos.Line + 1}] = true
		}
	}
	return allowed
}
