// Package analysis is a dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that qclint's analyzers
// are written against. The root qcsim module is intentionally
// dependency-free and this container has no module proxy access, so
// instead of carrying x/tools the lint module re-implements the small
// subset it needs on the standard library (go/ast, go/types, and
// export data produced by `go list -export`). Analyzers keep the
// familiar Analyzer/Pass/Diagnostic shape, so porting the suite onto
// the real go/analysis multichecker (and `go vet -vettool`) later is a
// mechanical swap of import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker, mirroring
// x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //qclint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass is the per-package unit of work handed to an Analyzer, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, including in-package test files.
	Files []*ast.File
	// PkgPath is the package's import path. External test packages
	// carry a "_test" suffix; use BasePkgPath to normalize.
	PkgPath string
	// Pkg and TypesInfo are the type-checked package and its use/def/
	// selection tables.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a Sprintf-style message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file holding pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: analyzer name plus a concrete file
// position, ready to print or match against test expectations.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Target is the type-checked package a run operates on — the loader-
// independent subset of a loaded package.
type Target struct {
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run executes one analyzer over a target package, applies
// //qclint:allow suppression, and returns the surviving findings
// sorted by position.
func Run(a *Analyzer, t *Target) ([]Finding, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      t.Fset,
		Files:     t.Files,
		PkgPath:   t.PkgPath,
		Pkg:       t.Pkg,
		TypesInfo: t.TypesInfo,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	allowed := allowedLines(t.Fset, t.Files, a.Name)
	var out []Finding
	for _, d := range diags {
		pos := t.Fset.Position(d.Pos)
		if allowed[lineKey{pos.Filename, pos.Line}] {
			continue
		}
		out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// BasePkgPath strips the "_test" suffix an external test package
// carries, so path-scoped rules cover a package and its black-box
// tests with one prefix.
func BasePkgPath(path string) string {
	return strings.TrimSuffix(path, "_test")
}

// HasPathPrefix reports whether package path p equals prefix or sits
// beneath it on a path-segment boundary ("qcsim/cmd" matches
// "qcsim/cmd/qcserve" but not "qcsim/cmdx").
func HasPathPrefix(p, prefix string) bool {
	return p == prefix || strings.HasPrefix(p, prefix+"/")
}
