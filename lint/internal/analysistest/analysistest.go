// Package analysistest runs one analyzer over fixture packages under a
// testdata/src tree and checks its findings against // want
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment on the offending line:
//
//	rand.Intn(3) // want "breaks bit-identity"
//
// Each quoted string is a regexp that must match exactly one finding
// reported on that line; findings with no matching expectation, and
// expectations with no matching finding, fail the test. The marker may
// ride any comment — including at the tail of a //qclint:allow
// directive, whose reason parsing stops at the embedded "//".
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"qcsim/lint/internal/analysis"
	"qcsim/lint/internal/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each fixture package, applies the analyzer (with
// //qclint:allow suppression, exactly as the driver does), and
// reports mismatches against the fixtures' // want expectations.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		pkg, err := load.LoadFixture(srcRoot, path)
		if err != nil {
			t.Errorf("loading fixture %q: %v", path, err)
			continue
		}
		findings, err := analysis.Run(a, pkg.Target())
		if err != nil {
			t.Errorf("running %s on %q: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, pkg, findings)
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

func checkExpectations(t *testing.T, pkg *load.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range wantPatterns(t, c, pos.String()) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}
	for _, fd := range findings {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == fd.Pos.Filename && w.line == fd.Pos.Line && w.re.MatchString(fd.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", fd.Pos, fd.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.text)
		}
	}
}

// wantPatterns extracts the quoted regexps of a "// want" marker
// anywhere inside the comment's text.
func wantPatterns(t *testing.T, c *ast.Comment, pos string) []string {
	t.Helper()
	const marker = "// want "
	i := strings.Index(c.Text, marker)
	if i < 0 {
		if strings.HasPrefix(c.Text, "// want\"") {
			t.Errorf("%s: malformed want marker (missing space)", pos)
		}
		return nil
	}
	rest := strings.TrimSpace(c.Text[i+len(marker):])
	var pats []string
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Errorf("%s: malformed want expectation %q: %v", pos, rest, err)
			return pats
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Errorf("%s: malformed want expectation %q: %v", pos, q, err)
			return pats
		}
		pats = append(pats, unq)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(pats) == 0 {
		t.Errorf("%s: want marker with no expectations", pos)
	}
	return pats
}
