// Package load type-checks Go packages for qclint without importing
// golang.org/x/tools. Two modes share one gc-export-data importer:
//
//   - LoadModule shells out to `go list -test -deps -export -json` and
//     type-checks every in-module package from source (including its
//     in-package and external test files), resolving imports through
//     the export data the go command just compiled. This is the same
//     data the compiler itself consumes, so the checker sees exactly
//     the types the build does.
//   - LoadFixture type-checks analysistest fixture packages under a
//     testdata/src root, resolving fixture-local imports recursively
//     from source and everything else (stdlib) through lazily-fetched
//     export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"qcsim/lint/internal/analysis"
)

// Package is one type-checked package ready to analyze.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Target adapts the package for analysis.Run.
func (p *Package) Target() *analysis.Target {
	return &analysis.Target{
		Fset:      p.Fset,
		Files:     p.Syntax,
		PkgPath:   p.PkgPath,
		Pkg:       p.Types,
		TypesInfo: p.TypesInfo,
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// LoadModule loads and type-checks the module packages matching
// patterns, rooted at dir. Each in-module package yields one Package
// holding its GoFiles plus in-package test files; a package with
// external (package foo_test) test files yields a second Package whose
// PkgPath carries a "_test" suffix.
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	modPath, err := goOutput(dir, "list", "-m")
	if err != nil {
		return nil, fmt.Errorf("resolving module path: %w", err)
	}
	modPath = strings.TrimSpace(modPath)

	args := []string{"list", "-test", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,ForTest,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles"}
	args = append(args, patterns...)
	out, err := goOutput(dir, args...)
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(strings.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		plain := p.ForTest == "" && !strings.Contains(p.ImportPath, " ") &&
			!strings.HasSuffix(p.ImportPath, ".test")
		if plain && p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		inModule := p.ImportPath == modPath || strings.HasPrefix(p.ImportPath, modPath+"/")
		if plain && !p.DepOnly && !p.Standard && inModule {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	exp := &exportImporter{fset: fset, files: exports, packages: make(map[string]*types.Package)}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		inPkg, err := checkFiles(fset, t.Dir, append(append([]string{}, t.GoFiles...), t.TestGoFiles...),
			t.ImportPath, exp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, inPkg)
		if len(t.XTestGoFiles) > 0 {
			// The external test package compiles against the in-memory
			// in-package result, so identifiers declared in export_test.go
			// style files resolve.
			ximp := &overrideImporter{base: exp, path: t.ImportPath, pkg: inPkg.Types}
			xPkg, err := checkFiles(fset, t.Dir, t.XTestGoFiles, t.ImportPath+"_test", ximp)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xPkg)
		}
	}
	return pkgs, nil
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, dir string, names []string, pkgPath string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkgPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Syntax: files, Types: tpkg, TypesInfo: info}, nil
}

// exportImporter resolves import paths through compiled export data
// (the files `go list -export` reports), caching loaded packages. The
// underlying gc importer is built once so its internal package cache
// deduplicates shared dependencies across Import calls.
type exportImporter struct {
	fset     *token.FileSet
	mu       sync.Mutex
	files    map[string]string // import path -> export data file
	packages map[string]*types.Package
	gc       types.Importer
	// fetch, when set, resolves paths missing from files (fixture
	// mode pulls stdlib export data lazily).
	fetch func(path string) (string, error)
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	e.mu.Lock()
	if p, ok := e.packages[path]; ok {
		e.mu.Unlock()
		return p, nil
	}
	file, ok := e.files[path]
	if !ok && e.fetch != nil {
		e.mu.Unlock()
		f, err := e.fetch(path)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.files[path], file, ok = f, f, true
	}
	if e.gc == nil {
		e.gc = importer.ForCompiler(e.fset, "gc", e.lookup)
	}
	gc := e.gc
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	pkg, err := gc.Import(path)
	if err != nil {
		return nil, fmt.Errorf("reading export data for %q (%s): %w", path, file, err)
	}
	e.mu.Lock()
	e.packages[path] = pkg
	e.mu.Unlock()
	return pkg, nil
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	f, ok := e.files[path]
	e.mu.Unlock()
	if !ok && e.fetch != nil {
		ff, err := e.fetch(path)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.files[path] = ff
		e.mu.Unlock()
		f, ok = ff, true
	}
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// overrideImporter serves one path from an in-memory package and
// everything else from the base importer.
type overrideImporter struct {
	base types.Importer
	path string
	pkg  *types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	if path == o.path {
		return o.pkg, nil
	}
	return o.base.Import(path)
}

// goOutput runs the go command in dir and returns stdout.
func goOutput(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return string(out), nil
}
