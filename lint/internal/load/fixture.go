package load

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LoadFixture type-checks the fixture package at srcRoot/src/pkgPath
// (the x/tools analysistest layout). Imports that resolve to another
// directory under srcRoot/src are type-checked recursively from
// source; everything else (the standard library) resolves through
// export data fetched lazily with `go list -export`.
func LoadFixture(srcRoot, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		srcRoot: srcRoot,
		fset:    fset,
		exp: &exportImporter{
			fset:     fset,
			files:    make(map[string]string),
			packages: make(map[string]*types.Package),
			fetch:    stdExportFile,
		},
		seen: make(map[string]*Package),
	}
	return imp.load(pkgPath)
}

type fixtureImporter struct {
	srcRoot string
	fset    *token.FileSet
	exp     *exportImporter
	seen    map[string]*Package
}

func (fi *fixtureImporter) load(pkgPath string) (*Package, error) {
	if p, ok := fi.seen[pkgPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through fixture %q", pkgPath)
		}
		return p, nil
	}
	fi.seen[pkgPath] = nil // cycle marker
	dir := filepath.Join(fi.srcRoot, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %q: %w", pkgPath, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %q: no Go files in %s", pkgPath, dir)
	}
	pkg, err := checkFiles(fi.fset, dir, names, pkgPath, fi)
	if err != nil {
		return nil, err
	}
	fi.seen[pkgPath] = pkg
	return pkg, nil
}

// Import implements types.Importer over the fixture tree plus stdlib
// export data.
func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(fi.srcRoot, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return fi.exp.Import(path)
}

var (
	stdExportMu    sync.Mutex
	stdExportFiles = make(map[string]string)
)

// stdExportFile resolves one (usually standard-library) import path to
// its compiled export data file, caching results process-wide so a
// test binary pays for each `go list -export` run at most once.
func stdExportFile(path string) (string, error) {
	stdExportMu.Lock()
	defer stdExportMu.Unlock()
	if f, ok := stdExportFiles[path]; ok {
		return f, nil
	}
	out, err := goOutput("", "list", "-export", "-json=ImportPath,Export,Standard", path)
	if err != nil {
		return "", fmt.Errorf("resolving export data for %q: %w", path, err)
	}
	dec := json.NewDecoder(strings.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return "", err
		}
		if p.Export != "" {
			stdExportFiles[p.ImportPath] = p.Export
		}
	}
	f, ok := stdExportFiles[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}
