package qcsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"

	"qcsim/circuit"
)

// TestClosedSimulatorReturnsErrClosed drives every error-returning
// method of a closed Simulator and requires the typed ErrClosed —
// the contract a serving layer's session eviction relies on.
func TestClosedSimulatorReturnsErrClosed(t *testing.T) {
	sim, err := New(4, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), circuit.GHZ(4)); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := sim.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	if err := sim.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sim.Close(); err != nil {
		t.Fatalf("second Close must stay a nil no-op, got %v", err)
	}

	calls := map[string]func() error{
		"Run": func() error {
			_, err := sim.Run(context.Background(), circuit.GHZ(4))
			return err
		},
		"RunProgress": func() error {
			_, err := sim.RunProgress(context.Background(), circuit.GHZ(4), func(ProgressEvent) {})
			return err
		},
		"Reset":         sim.Reset,
		"SetBasisState": func() error { return sim.SetBasisState(1) },
		"Amplitude": func() error {
			_, err := sim.Amplitude(0)
			return err
		},
		"FullState": func() error {
			_, err := sim.FullState()
			return err
		},
		"Norm": func() error {
			_, err := sim.Norm()
			return err
		},
		"ProbabilityOne": func() error {
			_, err := sim.ProbabilityOne(0)
			return err
		},
		"ExpectationZ": func() error {
			_, err := sim.ExpectationZ(0)
			return err
		},
		"ExpectationZZ": func() error {
			_, err := sim.ExpectationZZ(0, 1)
			return err
		},
		"MaxCutEnergy": func() error {
			_, err := sim.MaxCutEnergy([]circuit.Edge{{U: 0, V: 1}})
			return err
		},
		"AssertClassical":     func() error { return sim.AssertClassical(0, 0, 0.1) },
		"AssertSuperposition": func() error { return sim.AssertSuperposition(0, 0.1) },
		"AssertProduct":       func() error { return sim.AssertProduct(0, 1, 0.1) },
		"Sample": func() error {
			_, err := sim.Sample(4)
			return err
		},
		"Sampler": func() error {
			_, err := sim.Sampler()
			return err
		},
		"Save": func() error { return sim.Save(io.Discard) },
		"Load": func() error { return sim.Load(bytes.NewReader(ckpt.Bytes())) },
		"RunBatch": func() error {
			ansatz := circuit.VQEAnsatz(4, 1)
			_, err := sim.RunBatch(context.Background(), ansatz,
				[][]float64{make([]float64, ansatz.NumParams())})
			return err
		},
		"Gradient": func() error {
			ansatz := circuit.VQEAnsatz(4, 1)
			_, err := sim.Gradient(context.Background(), ansatz,
				make([]float64, ansatz.NumParams()),
				MaxCutObservable([]circuit.Edge{{U: 0, V: 1}}))
			return err
		},
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close: got %v, want ErrClosed", name, err)
		}
	}
}

// TestClosedAutoSimulator closes an auto simulator whose backend
// decision never resolved; methods must still report ErrClosed rather
// than resolving the decision on a dead handle.
func TestClosedAutoSimulator(t *testing.T) {
	sim, err := New(4, WithBackend(BackendAuto))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), circuit.GHZ(4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run on closed auto simulator: got %v, want ErrClosed", err)
	}
	if err := sim.Save(io.Discard); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save on closed auto simulator: got %v, want ErrClosed", err)
	}
}

// TestRunProgressStopsAfterCancel cancels the context from inside the
// first progress callback of a single-sweep circuit. The engine
// finishes the sweep in flight, but the facade must not deliver
// events for the trailing gates — a disconnected client must not keep
// streaming.
func TestRunProgressStopsAfterCancel(t *testing.T) {
	sim, err := New(4, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	// 32 H gates on low qubits: block-local, so the sweep scheduler
	// fuses them into one sweep and PollAbort cannot stop between them
	// — exactly the window where callbacks used to keep flowing after
	// cancellation.
	c := circuit.New(4)
	for i := 0; i < 32; i++ {
		c.H(i % 2)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events int32
	_, runErr := sim.RunProgress(ctx, c, func(ev ProgressEvent) {
		if atomic.AddInt32(&events, 1) == 1 {
			cancel()
		}
	})
	if got := atomic.LoadInt32(&events); got != 1 {
		t.Fatalf("got %d progress events after cancellation, want exactly 1", got)
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		t.Fatalf("unexpected run error: %v", runErr)
	}
}

// TestRunProgressCancelKeepsPrefix confirms the cancellation fix did
// not change run semantics: the run still stops at the next sweep
// boundary with the completed prefix intact and inspectable.
func TestRunProgressCancelKeepsPrefix(t *testing.T) {
	// Sweeps off: every gate is its own sweep, so the abort poll runs
	// between all of them and the cancel lands mid-circuit.
	sim, err := New(6, WithSeed(3), WithSweeps(false))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := circuit.QFT(6, 11)
	res, runErr := sim.RunProgress(ctx, c, func(ev ProgressEvent) {
		if ev.Gate == 0 {
			cancel()
		}
	})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", runErr)
	}
	if res == nil || res.Gates <= 0 || res.Gates >= len(c.Gates) {
		t.Fatalf("cancelled run should keep a proper prefix, got %+v", res)
	}
	if _, err := sim.Norm(); err != nil {
		t.Fatalf("simulator must stay inspectable after cancellation: %v", err)
	}
}
